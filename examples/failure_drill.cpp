// Failure drill: watch Canopus handle node failures exactly as §4.3-§4.6
// and §6 specify — exclusion of a crashed member, membership updates
// piggybacked on proposals, continued progress, and the documented stall
// (NOT wrong results) when a whole super-leaf dies.
//
//   ./build/examples/failure_drill
#include <cstdio>
#include <memory>
#include <vector>

#include "canopus/node.h"
#include "simnet/network.h"
#include "simnet/topology.h"

using namespace canopus;

namespace {

struct Drill {
  simnet::Simulator sim{42};
  simnet::Cluster cluster;
  std::unique_ptr<simnet::Network> net;
  std::shared_ptr<const lot::Lot> lot;
  std::vector<std::unique_ptr<core::CanopusNode>> nodes;

  Drill() {
    simnet::RackConfig rack;
    rack.racks = 2;
    rack.servers_per_rack = 3;
    rack.clients_per_rack = 0;
    cluster = simnet::build_multi_rack(rack);
    net = std::make_unique<simnet::Network>(sim, cluster.topo);
    lot::LotConfig lc;
    for (int r = 0; r < 2; ++r) {
      lc.super_leaves.emplace_back();
      for (int s = 0; s < 3; ++s)
        lc.super_leaves.back().push_back(
            cluster.servers[static_cast<std::size_t>(3 * r + s)]);
    }
    lot = std::make_shared<const lot::Lot>(lot::Lot::build(lc));
    for (NodeId s : cluster.servers) {
      nodes.push_back(std::make_unique<core::CanopusNode>(lot, core::Config{}));
      net->attach(s, *nodes.back());
    }
  }

  void write(std::size_t node, std::uint64_t key, std::uint64_t value) {
    sim.at(sim.now(), [this, node, key, value] {
      kv::Request r;
      r.is_write = true;
      r.key = key;
      r.value = value;
      r.arrival = sim.now();
      nodes[node]->submit(r);
    });
  }

  void crash(std::size_t node) {
    net->crash(cluster.servers[node]);
    nodes[node]->crash();
  }

  bool agree() const {
    const kv::CommitDigest* first = nullptr;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (!net->is_up(cluster.servers[i])) continue;
      if (first == nullptr)
        first = &nodes[i]->digest();
      else if (!(*first == nodes[i]->digest()))
        return false;
    }
    return true;
  }
};

}  // namespace

int main() {
  Drill d;

  std::printf("phase 1: healthy cluster (2 super-leaves x 3 nodes)\n");
  d.write(0, 1, 100);
  d.sim.run_until(kSecond);
  std::printf("  committed cycles: %llu, agreement: %s\n",
              static_cast<unsigned long long>(d.nodes[5]->last_committed_cycle()),
              d.agree() ? "YES" : "NO");

  std::printf("\nphase 2: crash one member of super-leaf 0 (node 2)\n");
  d.crash(2);
  d.sim.run_until(d.sim.now() + 3 * kSecond);  // Raft-based detection
  std::printf("  super-leaf 0 live view on node 0: %zu members\n",
              d.nodes[0]->live_peers().size());

  d.write(0, 2, 200);
  d.write(3, 3, 300);
  d.sim.run_until(d.sim.now() + 3 * kSecond);
  std::printf("  new writes committed on both super-leaves: key2=%llu key3=%llu\n",
              static_cast<unsigned long long>(d.nodes[4]->store().read(2)),
              static_cast<unsigned long long>(d.nodes[4]->store().read(3)));
  std::printf("  dead node removed from remote emulation table: %s\n",
              !d.nodes[4]->emulation_table().is_live(d.cluster.servers[2])
                  ? "YES"
                  : "NO");
  std::printf("  agreement: %s\n", d.agree() ? "YES" : "NO");

  std::printf("\nphase 3: kill super-leaf 0 entirely (quorum loss)\n");
  d.crash(0);
  d.crash(1);
  const CycleId before = d.nodes[3]->last_committed_cycle();
  d.write(3, 9, 900);
  d.sim.run_until(d.sim.now() + 5 * kSecond);
  const CycleId after = d.nodes[3]->last_committed_cycle();
  std::printf("  super-leaf 1 committed cycles before/after: %llu/%llu\n",
              static_cast<unsigned long long>(before),
              static_cast<unsigned long long>(after));
  std::printf("  protocol stalled (no wrong results, Sec 6): %s\n",
              after <= before + 1 && d.agree() ? "YES" : "NO");
  std::printf("\nCanopus trades availability under rack failure for the\n"
              "simplicity and speed of the common case — by design.\n");
  return d.agree() ? 0 : 1;
}
