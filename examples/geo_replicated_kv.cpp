// Geo-replicated key-value store: Canopus across 5 datacenters with the
// paper's Table 1 latencies, pipelining enabled, serving a read-heavy
// workload — the deployment §8.2 evaluates and the paper's intro motivates
// (geo-replicated databases with conflict-free transaction processing).
//
//   ./build/examples/geo_replicated_kv
//
// Shows: client-observed throughput/latency per datacenter, pipelined cycle
// cadence, and the commit-order agreement across continents.
#include <cstdio>
#include <memory>
#include <vector>

#include "canopus/node.h"
#include "simnet/network.h"
#include "simnet/topology.h"
#include "workload/client.h"
#include "workload/stats.h"

using namespace canopus;

int main() {
  constexpr int kDcs = 5;  // IR, CA, VA, TK, OR
  constexpr int kPerDc = 3;

  simnet::Simulator sim(7);
  simnet::WanConfig wan;
  wan.servers_per_dc.assign(kDcs, kPerDc);
  wan.clients_per_dc.assign(kDcs, 2);
  wan.rtt_ms = simnet::table1_rtt_ms();
  simnet::Cluster cluster = simnet::build_multi_dc(wan);
  simnet::Network net(sim, cluster.topo, simnet::CpuModel{2'000, 2'000, 2.5});

  lot::LotConfig lc;
  for (int d = 0; d < kDcs; ++d) {
    lc.super_leaves.emplace_back();
    for (int s = 0; s < kPerDc; ++s)
      lc.super_leaves.back().push_back(
          cluster.servers[static_cast<std::size_t>(kPerDc * d + s)]);
  }
  auto lot = std::make_shared<const lot::Lot>(lot::Lot::build(lc));

  core::Config cfg;
  cfg.pipelining = true;               // §7.1: WAN needs overlapping cycles
  cfg.cycle_interval = 5 * kMillisecond;
  cfg.max_batch = 1'000;

  std::vector<std::unique_ptr<core::CanopusNode>> nodes;
  for (NodeId s : cluster.servers) {
    nodes.push_back(std::make_unique<core::CanopusNode>(lot, cfg));
    net.attach(s, *nodes.back());
  }

  // One recorder per datacenter to report per-site latency.
  std::vector<std::shared_ptr<workload::LatencyRecorder>> recs;
  std::vector<std::unique_ptr<workload::OpenLoopClient>> clients;
  Rng seeder(11);
  for (int d = 0; d < kDcs; ++d) {
    auto rec = std::make_shared<workload::LatencyRecorder>();
    rec->set_window(kSecond, 3 * kSecond);
    recs.push_back(rec);
  }
  for (std::size_t i = 0; i < cluster.clients.size(); ++i) {
    const int d = cluster.topo.dc_of(cluster.clients[i]);
    workload::ClientConfig cc;
    for (int s = 0; s < kPerDc; ++s)
      cc.servers.push_back(
          cluster.servers[static_cast<std::size_t>(kPerDc * d + s)]);
    cc.rate_per_s = 40'000;  // 400k total
    cc.write_ratio = 0.2;
    cc.stop_at = 3 * kSecond;
    clients.push_back(std::make_unique<workload::OpenLoopClient>(
        cc, recs[static_cast<std::size_t>(d)], seeder()));
    net.attach(cluster.clients[i], *clients.back());
  }

  sim.run_until(4 * kSecond);

  std::printf("geo-replicated KV over Canopus: %d DCs x %d nodes, 400k req/s,"
              " 20%% writes\n\n", kDcs, kPerDc);
  const auto& names = simnet::table1_site_names();
  for (int d = 0; d < kDcs; ++d) {
    const auto& r = *recs[static_cast<std::size_t>(d)];
    std::printf("  %s: %7.0f req/s  median %6.1f ms  p99 %6.1f ms\n",
                names[static_cast<std::size_t>(d)], r.throughput(),
                r.histogram().median() / 1e6,
                r.histogram().percentile(0.99) / 1e6);
  }

  bool agree = true;
  for (const auto& n : nodes) agree = agree && n->digest() == nodes[0]->digest();
  std::printf("\ncycles committed: %llu; cross-continent agreement: %s\n",
              static_cast<unsigned long long>(nodes[0]->last_committed_cycle()),
              agree ? "YES" : "NO");
  return agree ? 0 : 1;
}
