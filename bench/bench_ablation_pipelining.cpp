// Ablation: pipelining (§7.1) on vs off in the WAN deployment.
//
// Without pipelining a node runs one consensus cycle at a time, so WAN
// throughput is capped at roughly (batch size) / (widest RTT). Pipelining
// keeps a window of cycles in flight (commits stay strictly cycle-ordered)
// and should lift throughput by an order of magnitude at equal latency.
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace canopus;
  using namespace canopus::workload;
  bench::Harness h(argc, argv, "ablation_pipelining",
                   "Ablation: Canopus pipelining on/off (3 DCs x 3 nodes)",
                   "design choice from Sec 7.1");
  const bool quick = h.quick();

  for (bool pipe : {false, true}) {
    TrialConfig tc;
    tc.sim_threads = h.sim_threads();
    tc.runtime = h.runtime_kind();
    tc.system = System::kCanopus;
    tc.wan = true;
    tc.groups = 3;
    tc.per_group = 3;
    tc.warmup = 1'200 * kMillisecond;
    tc.measure = quick ? kSecond : 1'500 * kMillisecond;
    tc.drain = 1'500 * kMillisecond;
    tc.canopus.pipelining = pipe;

    std::printf("\n  pipelining %s\n", pipe ? "ON (5ms/1000-req cycles)" : "OFF");
    std::vector<double> rates{30'000, 100'000, 300'000, 1'000'000};
    if (!quick) rates.push_back(2'000'000);
    const auto sweep = sweep_rates(h.pool(), make_trial(tc), rates);
    for (const auto& m : sweep) {
      std::printf("    offered %8.3f M  ->  %8.3f Mreq/s   median %8.2f ms\n",
                  bench::mreq(m.offered), bench::mreq(m.throughput),
                  bench::ms(m.median));
    }
    auto& sr = h.add_series(pipe ? "pipelining ON" : "pipelining OFF");
    sr.attr("pipelining", pipe ? "on" : "off");
    sr.sweep = sweep;
  }
  std::printf("\nExpected: OFF saturates near batch/RTT; ON tracks offered\n"
              "load to millions of requests/second at similar latency.\n");
  return h.finish();
}
