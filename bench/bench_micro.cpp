// Microbenchmarks (google-benchmark) for the hot substrate primitives:
// event queue churn, network delivery, LOT construction/queries, latency
// histogram recording, and a whole miniature consensus cycle.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <vector>

#include "canopus/lot.h"
#include "canopus/node.h"
#include "simnet/event_queue.h"
#include "simnet/network.h"
#include "simnet/payload_testing.h"
#include "simnet/topology.h"
#include "workload/stats.h"

namespace {

using namespace canopus;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  simnet::EventQueue q;
  Time t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) q.schedule(t + (i * 37) % 1000, [] {});
    while (!q.empty()) {
      auto ev = q.pop();
      benchmark::DoNotOptimize(ev);
    }
    t += 1000;
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_EventQueueArmCancelChurn(benchmark::State& state) {
  // The Canopus pipeline-timer pattern: arm a far-future watchdog, cancel
  // it almost immediately, repeat — with only a trickle of events actually
  // firing. Stresses how the queue handles cancelled entries.
  simnet::EventQueue q;
  Time t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      const auto id = q.schedule(t + kSecond, [] {});
      q.cancel(id);
    }
    q.schedule(t, [] {});
    auto ev = q.pop();
    benchmark::DoNotOptimize(ev);
    t += 10;
  }
}
BENCHMARK(BM_EventQueueArmCancelChurn);

void BM_SimulatorTimerChurn(benchmark::State& state) {
  simnet::Simulator sim;
  for (auto _ : state) {
    auto id = sim.after(100, [] {});
    sim.cancel(id);
    sim.after(1, [] {});
    sim.run();
  }
}
BENCHMARK(BM_SimulatorTimerChurn);

void BM_NetworkDelivery(benchmark::State& state) {
  simnet::Simulator sim;
  simnet::RackConfig rc;
  rc.racks = 3;
  rc.servers_per_rack = 9;
  rc.clients_per_rack = 0;
  auto cluster = simnet::build_multi_rack(rc);
  simnet::Network net(sim, cluster.topo);
  struct Sink : simnet::Process {
    void on_message(const simnet::Message&) override {}
  };
  std::vector<Sink> sinks(cluster.servers.size());
  for (std::size_t i = 0; i < sinks.size(); ++i)
    net.attach(cluster.servers[i], sinks[i]);
  sim.run();
  std::size_t i = 0;
  for (auto _ : state) {
    net.send(simnet::Message(cluster.servers[i % 27],
                             cluster.servers[(i + 13) % 27], 256, int{1}));
    sim.run();
    ++i;
  }
}
BENCHMARK(BM_NetworkDelivery);

void BM_MessageTypedAccess(benchmark::State& state) {
  // The per-delivery dispatch cost every protocol pays: one tag compare per
  // candidate type (formerly an RTTI dynamic_cast per candidate).
  simnet::Message m(1, 2, 64, int{7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.as<char>());  // miss
    benchmark::DoNotOptimize(m.as<int>());   // hit
  }
}
BENCHMARK(BM_MessageTypedAccess);

void BM_PayloadBroadcastFanout(benchmark::State& state) {
  // Re-addressing a fetched proposal to 26 peers: must copy pointers, not
  // the 1000-request write set.
  canopus::proto::Proposal p;
  p.writes = std::make_shared<const std::vector<canopus::kv::Request>>(
      std::vector<canopus::kv::Request>(1000));
  const std::size_t bytes = p.wire_bytes();  // before the move below
  simnet::Message fetched(0, 1, bytes, std::move(p));
  for (auto _ : state) {
    for (NodeId peer = 2; peer < 28; ++peer)
      benchmark::DoNotOptimize(fetched.readdressed(1, peer));
  }
}
BENCHMARK(BM_PayloadBroadcastFanout);

void BM_LotBuild27(benchmark::State& state) {
  lot::LotConfig cfg;
  for (NodeId p = 0; p < 27; p += 3) cfg.super_leaves.push_back({p, p + 1, p + 2});
  cfg.arity = 3;
  for (auto _ : state) {
    auto t = lot::Lot::build(cfg);
    benchmark::DoNotOptimize(t.height());
  }
}
BENCHMARK(BM_LotBuild27);

void BM_EmulationTableQuery(benchmark::State& state) {
  lot::LotConfig cfg;
  for (NodeId p = 0; p < 27; p += 3) cfg.super_leaves.push_back({p, p + 1, p + 2});
  auto t = lot::Lot::build(cfg);
  lot::EmulationTable e(t);
  e.remove(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.emulators(t.root()));
  }
}
BENCHMARK(BM_EmulationTableQuery);

void BM_HistogramRecord(benchmark::State& state) {
  workload::LatencyHistogram h;
  Rng rng(3);
  for (auto _ : state) {
    h.record(static_cast<Time>(rng.below(100 * kMillisecond)));
  }
  benchmark::DoNotOptimize(h.median());
}
BENCHMARK(BM_HistogramRecord);

/// A full 9-node consensus cycle: submit one write, run to commit.
void BM_CanopusFullCycle(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    simnet::Simulator sim(42);
    simnet::RackConfig rc;
    rc.racks = 3;
    rc.servers_per_rack = 3;
    rc.clients_per_rack = 0;
    auto cluster = simnet::build_multi_rack(rc);
    simnet::Network net(sim, cluster.topo);
    lot::LotConfig lc;
    for (int g = 0; g < 3; ++g)
      lc.super_leaves.push_back({cluster.servers[static_cast<std::size_t>(3 * g)],
                                 cluster.servers[static_cast<std::size_t>(3 * g + 1)],
                                 cluster.servers[static_cast<std::size_t>(3 * g + 2)]});
    auto lot = std::make_shared<const lot::Lot>(lot::Lot::build(lc));
    std::vector<std::unique_ptr<core::CanopusNode>> nodes;
    for (NodeId s : cluster.servers) {
      nodes.push_back(std::make_unique<core::CanopusNode>(lot, core::Config{}));
      net.attach(s, *nodes.back());
    }
    sim.run_until(kMillisecond);
    state.ResumeTiming();

    sim.at(sim.now(), [&] {
      kv::Request r;
      r.is_write = true;
      r.key = 1;
      r.value = 2;
      nodes[0]->submit(r);
    });
    while (nodes[8]->last_committed_cycle() == 0 && !sim.idle())
      sim.run_until(sim.now() + kMillisecond);
    benchmark::DoNotOptimize(nodes[8]->last_committed_cycle());
  }
}
BENCHMARK(BM_CanopusFullCycle)->Unit(benchmark::kMicrosecond);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to BENCH_micro.json
// so the microbenches land next to the figure benches' BENCH_*.json files.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false, has_fmt = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
    if (std::strncmp(argv[i], "--benchmark_out_format=", 23) == 0)
      has_fmt = true;
  }
  // Inject the default only when the user asked for neither flag: a lone
  // --benchmark_out_format means console/CSV output on the user's terms,
  // and pairing it with an injected .json path would corrupt the file.
  char out[] = "--benchmark_out=BENCH_micro.json";
  char fmt[] = "--benchmark_out_format=json";
  if (!has_out && !has_fmt) {
    args.push_back(out);
    args.push_back(fmt);
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
