// Sharded-deployment bench: aggregate throughput and latency vs shard
// count, uniform and zipfian key popularity, for all four systems — plus a
// per-group chaos storm with one HistoryAuditor per group.
//
// No paper figure corresponds to this bench: the paper deploys ONE Canopus
// instance. This is the production shape its super-leaf design points at —
// N independent consensus groups behind a hash-partitioned keyspace
// (workload/sharded.h) — measured with the weak-scaling methodology of
// EXPERIMENTS.md: per-group offered load held constant (R0), total offered
// = R0 x shards, so a system that shards cleanly shows aggregate committed
// throughput rising ~linearly with shard count while per-request latency
// stays flat. Router clients redirect around crashed servers and the
// million-session workload plane attributes requests to flat per-session
// cursors (full mode runs 2^20 sessions).
//
// Emits BENCH_shard.json (canopus-bench-v1): one series per
// (system, dist, shards) with point "agg" and scalars
//   shards, committed_writes, redirects, retries, client_failed, sessions,
//   groups_agree, max_group_share (hot-group imbalance; ~1/shards when
//   uniform, larger under zipf skew)
// plus one chaos series per system (4 groups, per-group storms, medium
// intensity) with per-group audit verdicts. Exits 2 on any audit violation,
// any within-group disagreement, or if Canopus/Raft aggregate committed
// throughput fails to rise with shard count.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workload/sharded.h"

int main(int argc, char** argv) {
  using namespace canopus;
  using namespace canopus::workload;
  bench::Harness h(argc, argv, "shard",
                   "Sharded multi-group consensus: throughput vs shard count",
                   "no paper figure; production shape of Sec 4 super-leaves");
  const bool quick = h.quick();

  const std::vector<int> shard_counts = {1, 2, 4, 8};
  const std::vector<KeyDist> dists = {KeyDist::kUniform, KeyDist::kZipfian};
  const double r0 = 20'000;  // per-group offered load (weak scaling)

  ShardedConfig proto;
  proto.base.sim_threads = h.sim_threads();
  proto.base.per_group = 3;
  proto.base.client_machines = 2;  // per rack
  proto.base.warmup = 400 * kMillisecond;
  proto.base.measure = quick ? 1 * kSecond : 2 * kSecond;
  proto.base.drain = 400 * kMillisecond;
  // Full mode runs the million-session plane: 8 racks x 2 machines x 64k
  // sessions = 2^20 clients, still one 64-bit cursor per session.
  proto.sessions_per_machine = quick ? 4'096 : 65'536;

  struct Job {
    System system;
    KeyDist dist;
    int shards;
  };
  std::vector<Job> jobs;
  for (System sys : kAllSystems)
    for (KeyDist d : dists)
      for (int s : shard_counts) jobs.push_back({sys, d, s});

  std::vector<ShardedTrialResult> results(jobs.size());
  h.pool().run_indexed(jobs.size(), [&](std::size_t i) {
    ShardedConfig sc = proto;
    sc.base.system = jobs[i].system;
    sc.base.key_dist = jobs[i].dist;
    sc.base.groups = jobs[i].shards;
    results[i] = run_sharded_trial(sc, r0 * jobs[i].shards);
  });

  int violations = 0;
  // committed_writes per (system, dist) across the shard axis, in
  // shard_counts order, for the scaling gates.
  std::vector<std::vector<double>> curve(
      static_cast<std::size_t>(4) * dists.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    const ShardedTrialResult& r = results[i];
    if (i % (dists.size() * shard_counts.size()) == 0)
      std::printf("\n--- %s ---\n", system_name(j.system));
    std::printf(
        "  %-8s x%d  %7.3f Mreq/s  median %7.3f ms  p99 %7.3f ms  "
        "commits %8llu  %s\n",
        key_dist_name(j.dist), j.shards, bench::mreq(r.agg.throughput),
        bench::ms(r.agg.median), bench::ms(r.agg.p99),
        static_cast<unsigned long long>(r.committed_writes),
        r.groups_agree ? "agree" : "DIVERGED");
    if (!r.groups_agree) ++violations;

    double max_share = 0;
    for (const std::uint64_t c : r.group_commits)
      max_share = std::max(
          max_share, static_cast<double>(c) /
                         std::max<double>(1.0, static_cast<double>(
                                                   r.committed_writes)));
    curve[i / shard_counts.size()].push_back(
        static_cast<double>(r.committed_writes));

    auto& sr = h.add_series(std::string(system_name(j.system)) + " / " +
                            key_dist_name(j.dist) + " / shards=" +
                            std::to_string(j.shards));
    sr.attr("system", system_name(j.system))
        .attr("dist", key_dist_name(j.dist))
        .scalar("shards", j.shards)
        .scalar("committed_writes", static_cast<double>(r.committed_writes))
        .scalar("redirects", static_cast<double>(r.redirects))
        .scalar("retries", static_cast<double>(r.retries))
        .scalar("client_failed", static_cast<double>(r.client_failed))
        .scalar("sessions", static_cast<double>(r.sessions))
        .scalar("groups_agree", r.groups_agree ? 1 : 0)
        .scalar("max_group_share", max_share)
        .point("agg", r.agg);
  }

  // Scaling gates: aggregate committed throughput must rise strictly with
  // shard count for the uniform workload (zipf is reported, not gated —
  // skew legitimately concentrates load on hot groups).
  const auto strictly_rising = [&](System sys) {
    for (std::size_t i = 0; i < jobs.size(); i += shard_counts.size()) {
      if (jobs[i].system != sys || jobs[i].dist != KeyDist::kUniform)
        continue;
      const std::vector<double>& c = curve[i / shard_counts.size()];
      for (std::size_t k = 1; k < c.size(); ++k)
        if (c[k] <= c[k - 1]) return false;
      return true;
    }
    return false;
  };
  const bool canopus_ok = strictly_rising(System::kCanopus);
  const bool raft_ok = strictly_rising(System::kRaft);
  h.add_scalar("scaling_ok_canopus", canopus_ok ? 1 : 0);
  h.add_scalar("scaling_ok_raft", raft_ok ? 1 : 0);
  if (!canopus_ok || !raft_ok) ++violations;

  // --- per-group chaos: seeded storms against every group, one auditor
  // per group; ANY violation fails the bench.
  std::printf("\n--- chaos (4 groups, per-group storms) ---\n");
  FaultTiming ft;
  ft.warmup = 400 * kMillisecond;
  ft.fault_at = 800 * kMillisecond;
  ft.heal_at = quick ? 1'800 * kMillisecond : 2'800 * kMillisecond;
  ft.end_at = ft.heal_at + 800 * kMillisecond;
  ft.drain = 600 * kMillisecond;
  const ChaosIntensity ci = standard_intensities()[1];  // medium

  std::vector<ShardedChaosResult> storms(4);
  h.pool().run_indexed(storms.size(), [&](std::size_t i) {
    ShardedConfig sc = proto;
    sc.base = chaos_tuned(sc.base);
    sc.base.system = kAllSystems[i];
    sc.base.groups = 4;
    storms[i] = run_sharded_chaos_trial(sc, ci, ft, r0 * 4,
                                        ChaosScope::kPerGroup);
  });
  std::uint64_t chaos_violations = 0;
  for (std::size_t i = 0; i < storms.size(); ++i) {
    const ShardedChaosResult& r = storms[i];
    chaos_violations += r.violations;
    std::printf(
        "  %-10s  %3llu faults  violations %llu  acked %8llu  "
        "redirects %6llu  %s\n",
        system_name(kAllSystems[i]),
        static_cast<unsigned long long>(r.fault_events),
        static_cast<unsigned long long>(r.violations),
        static_cast<unsigned long long>(r.acked_writes),
        static_cast<unsigned long long>(r.redirects),
        r.recovered ? "recovered" : "NOT RECOVERED");
    for (const AuditViolation& v : r.violation_details)
      std::printf("    !! %s at t=%lld: %s\n", audit_violation_name(v.kind),
                  static_cast<long long>(v.at), v.detail.c_str());
    auto& sr = h.add_series(std::string(system_name(kAllSystems[i])) +
                            " / chaos shards=4");
    sr.attr("system", system_name(kAllSystems[i]))
        .attr("intensity", ci.name)
        .scalar("shards", 4)
        .scalar("violations", static_cast<double>(r.violations))
        .scalar("fault_events", static_cast<double>(r.fault_events))
        .scalar("acked_writes", static_cast<double>(r.acked_writes))
        .scalar("committed_writes", static_cast<double>(r.committed_writes))
        .scalar("redirects", static_cast<double>(r.redirects))
        .scalar("retries", static_cast<double>(r.retries))
        .scalar("client_failed", static_cast<double>(r.client_failed))
        .scalar("recovered", r.recovered ? 1 : 0)
        .scalar("recovery_ms",
                r.recovered ? static_cast<double>(r.recovery_ns) / 1e6 : -1)
        .point("before", r.before)
        .point("storm", r.storm)
        .point("after", r.after);
    for (std::size_t g = 0; g < r.group_violations.size(); ++g)
      sr.scalar("violations_group" + std::to_string(g),
                static_cast<double>(r.group_violations[g]));
  }
  violations += static_cast<int>(chaos_violations);

  h.add_scalar("violations_total", static_cast<double>(chaos_violations));
  std::printf("\nscaling: canopus %s, raft %s   chaos violations: %llu\n",
              canopus_ok ? "ok" : "NOT RISING",
              raft_ok ? "ok" : "NOT RISING",
              static_cast<unsigned long long>(chaos_violations));
  const int json_rc = h.finish();
  return json_rc != 0 ? json_rc : (violations > 0 ? 2 : 0);
}
