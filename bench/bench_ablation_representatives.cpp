// Ablation: super-leaf representative count k and redundant fetching (§4.5).
//
// More representatives spread the fetch/rebroadcast load; redundant
// fetching (Figure 2 shows 2x) halves the odds of waiting out a fetch
// timeout when an emulator died, at the cost of duplicate WAN transfers
// and duplicate intra-rack rebroadcast work.
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace canopus;
  using namespace canopus::workload;
  bench::Harness h(
      argc, argv, "ablation_representatives",
      "Ablation: representatives k and redundant fetch (27 nodes, 20% writes)",
      "design choice from Sec 4.5");
  const bool quick = h.quick();

  struct Variant {
    int k;
    int redundancy;
  };
  const std::vector<Variant> variants{{1, 1}, {2, 1}, {2, 2}, {3, 1}, {3, 3}};

  std::vector<Measurement> results(variants.size());
  h.pool().run_indexed(variants.size(), [&](std::size_t i) {
    TrialConfig tc;
    tc.sim_threads = h.sim_threads();
    tc.runtime = h.runtime_kind();
    tc.system = System::kCanopus;
    tc.groups = 3;
    tc.per_group = 9;
    tc.warmup = 400 * kMillisecond;
    tc.measure = quick ? 600 * kMillisecond : kSecond;
    tc.drain = 400 * kMillisecond;
    tc.canopus.representatives = variants[i].k;
    tc.canopus.redundant_fetch = variants[i].redundancy;
    results[i] = run_trial(tc, 1'200'000);
  });

  std::printf("\n  %-28s  %14s  %12s\n", "variant", "Mreq/s @ fixed", "median ms");
  for (std::size_t i = 0; i < variants.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof label, "k=%d redundancy=%d", variants[i].k,
                  variants[i].redundancy);
    bench::print_measurement_row(label, results[i]);
    auto& sr = h.add_series(label);
    sr.scalar("representatives", variants[i].k)
        .scalar("redundant_fetch", variants[i].redundancy);
    sr.sweep = {results[i]};
  }
  std::printf("\nExpected: redundancy > 1 costs duplicate rebroadcast work\n"
              "(slightly higher latency under load); k mainly matters for\n"
              "fault tolerance, not steady-state throughput.\n");
  return h.finish();
}
