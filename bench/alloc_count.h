// Counting global allocation hook for the bench harness.
//
// Replaces the global allocation functions with counting forwards to
// malloc/free, so BENCH_*.json can report the harness-lifetime allocation
// count (the perf trajectory of the zero-allocation hot path, see DESIGN.md
// §8). Replacement allocation functions must be non-inline and defined in
// exactly ONE translation unit per binary — this header is included by
// bench_util.h, which every bench's single main TU includes once.
// (tests/simnet/allocation_test.cpp carries its own copy of the hook for
// the same reason.)
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace canopus::bench {

inline std::atomic<std::uint64_t> g_heap_allocations{0};

/// Monotonic count of global operator new calls in this binary.
inline std::uint64_t heap_allocations() {
  return g_heap_allocations.load(std::memory_order_relaxed);
}

namespace detail {
inline void* counted_alloc(std::size_t n) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
inline void* counted_alloc_nothrow(std::size_t n) noexcept {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}
}  // namespace detail

}  // namespace canopus::bench

void* operator new(std::size_t n) {
  return canopus::bench::detail::counted_alloc(n);
}
void* operator new[](std::size_t n) {
  return canopus::bench::detail::counted_alloc(n);
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return canopus::bench::detail::counted_alloc_nothrow(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return canopus::bench::detail::counted_alloc_nothrow(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
