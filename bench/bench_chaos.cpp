// Chaos sweep: seeded crash/partition storms swept over intensity, for
// every consensus system, with the invariant audit plane judging every
// trial (workload/audit.h).
//
// No paper figure corresponds to this bench — the paper's evaluation is
// failure-free — but the design argument of §6 is that Canopus trades
// availability under rare failures for common-case performance while never
// violating safety. The chaos sweep makes that claim falsifiable: storms
// drawn from seeded RNGs (simnet/chaos.h) hammer all four systems with
// randomized crash/recover/sever/heal sequences, and the auditor checks
// commit-prefix agreement, no-lost-acked-writes and per-session monotonic
// reads CONTINUOUSLY. Violations must be zero for every grid point; the
// binary exits nonzero otherwise, so CI's chaos-smoke label gates on it.
//
// Emits BENCH_chaos.json (canopus-bench-v1): one series per
// (system, intensity, seed) with points "before"/"storm"/"after", scalars
//   violations, fault_events, acked_writes, committed_writes,
//   comparable_nodes, client_failed, recovered, recovery_ms,
//   availability_storm, availability_after
// plus figure-level per-system recovery percentiles and the violation
// total. Every trial builds an isolated simulator from seeds derived off
// its (seed, intensity) coordinates, so results are bit-identical to a
// serial run regardless of --threads — and a violating grid point can be
// replayed alone with --only=SYSTEM --seed=K --intensity=NAME (see
// EXPERIMENTS.md "Chaos sweep methodology" for the bisection recipe).
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workload/chaos.h"

namespace {

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

std::string flag_value(int argc, char** argv, const char* prefix) {
  const std::size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix, len) == 0) return argv[i] + len;
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace canopus;
  using namespace canopus::workload;
  bench::Harness h(argc, argv, "chaos",
                   "Chaos sweep: seeded fault storms x intensity, "
                   "invariant-audited",
                   "Sec 6 (safety under failures); no paper figure");
  const bool quick = h.quick();

  // Bisection filters: replay one slice of the grid (same derived seeds as
  // the full sweep — filtering changes WHICH trials run, never their bits).
  const std::string only_system = flag_value(argc, argv, "--only=");
  const std::string only_intensity = flag_value(argc, argv, "--intensity=");
  const std::string only_seed = flag_value(argc, argv, "--seed=");

  FaultTiming ft;
  ft.warmup = 300 * kMillisecond;
  ft.fault_at = 700 * kMillisecond;
  ft.heal_at = quick ? 2'000 * kMillisecond : 3'500 * kMillisecond;
  ft.end_at = ft.heal_at + 700 * kMillisecond;
  ft.drain = 700 * kMillisecond;

  TrialConfig base;
  base.sim_threads = h.sim_threads();
  base.groups = 3;
  base.per_group = 3;
  base.client_machines = 2;
  base.warmup = ft.warmup;
  base = chaos_tuned(base);
  const double rate = 12'000;

  std::vector<ChaosIntensity> intensities = standard_intensities();
  if (!quick)
    intensities.push_back(
        {"extreme", 50.0, 2, 6, 100 * kMillisecond, 120 * kMillisecond});
  std::vector<std::uint64_t> seeds = {1, 2, 3};
  if (!quick) seeds = {1, 2, 3, 4, 5};

  struct Job {
    System system;
    const ChaosIntensity* intensity;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  for (System sys : kAllSystems) {
    if (!only_system.empty() &&
        std::string(system_name(sys)).find(only_system) == std::string::npos)
      continue;
    for (const ChaosIntensity& ci : intensities) {
      if (!only_intensity.empty() && ci.name != only_intensity) continue;
      for (std::uint64_t seed : seeds) {
        if (!only_seed.empty() && std::to_string(seed) != only_seed) continue;
        jobs.push_back({sys, &ci, seed});
      }
    }
  }
  if (jobs.empty()) {
    std::fprintf(stderr, "error: --only/--intensity/--seed matched nothing\n");
    return 1;
  }

  std::vector<ChaosResult> results(jobs.size());
  h.pool().run_indexed(jobs.size(), [&](std::size_t i) {
    TrialConfig tc = base;
    tc.system = jobs[i].system;
    tc.seed = jobs[i].seed;
    results[i] = run_chaos_trial(tc, *jobs[i].intensity, ft, rate);
  });

  std::uint64_t violations_total = 0;
  std::string last_system;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ChaosResult& r = results[i];
    if (r.system != last_system) {
      std::printf("\n--- %s ---\n", r.system.c_str());
      last_system = r.system;
    }
    std::printf(
        "  %-8s seed %llu  %2llu faults  avail %5.1f%%/%5.1f%%/%5.1f%%  "
        "%s  %s\n",
        r.intensity.c_str(), static_cast<unsigned long long>(r.seed),
        static_cast<unsigned long long>(r.fault_events),
        100 * r.before.throughput / rate, 100 * r.storm.throughput / rate,
        100 * r.after.throughput / rate,
        r.violations == 0 ? "clean" : "VIOLATED",
        r.recovered
            ? (std::string("recovered in ") +
               std::to_string(r.recovery_ns / kMillisecond) + " ms")
                  .c_str()
            : "no post-storm completion");
    violations_total += r.violations;
    for (const AuditViolation& v : r.violation_details)
      std::printf("      !! %s at t=%lld ms: %s\n",
                  audit_violation_name(v.kind),
                  static_cast<long long>(v.at / kMillisecond),
                  v.detail.c_str());

    auto& sr = h.add_series(r.system + " / " + r.intensity + " / seed " +
                            std::to_string(r.seed));
    sr.attr("system", r.system)
        .attr("intensity", r.intensity)
        .attr("seed", std::to_string(r.seed))
        .scalar("violations", static_cast<double>(r.violations))
        .scalar("fault_events", static_cast<double>(r.fault_events))
        .scalar("acked_writes", static_cast<double>(r.acked_writes))
        .scalar("observed_reads", static_cast<double>(r.observed_reads))
        .scalar("committed_writes", static_cast<double>(r.committed_writes))
        .scalar("comparable_nodes", static_cast<double>(r.comparable_nodes))
        .scalar("client_failed", static_cast<double>(r.client_failed))
        .scalar("recovered", r.recovered ? 1 : 0)
        .scalar("recovery_ms",
                r.recovered
                    ? static_cast<double>(r.recovery_ns) / kMillisecond
                    : -1)
        .scalar("availability_storm", r.storm.throughput / rate)
        .scalar("availability_after", r.after.throughput / rate)
        .point("before", r.before)
        .point("storm", r.storm)
        .point("after", r.after);
  }

  // Per-system aggregates over the grid: recovery-time percentiles (over
  // trials that recovered) and how many did.
  for (System sys : kAllSystems) {
    std::vector<double> rec_ms;
    int trials = 0, recovered = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].system != sys) continue;
      ++trials;
      if (results[i].recovered) {
        ++recovered;
        rec_ms.push_back(static_cast<double>(results[i].recovery_ns) /
                         kMillisecond);
      }
    }
    if (trials == 0) continue;
    const std::string name = system_name(sys);
    h.add_scalar("trials_" + name, trials);
    h.add_scalar("recovered_trials_" + name, recovered);
    h.add_scalar("recovery_p50_ms_" + name, percentile(rec_ms, 0.50));
    h.add_scalar("recovery_p90_ms_" + name, percentile(rec_ms, 0.90));
    h.add_scalar("recovery_max_ms_" + name, percentile(rec_ms, 1.0));
    std::printf("\n%s: %d/%d trials recovered, recovery p50 %.1f ms  "
                "p90 %.1f ms\n",
                name.c_str(), recovered, trials, percentile(rec_ms, 0.50),
                percentile(rec_ms, 0.90));
  }

  h.add_scalar("violations_total", static_cast<double>(violations_total));
  std::printf("\ninvariant violations: %llu\n",
              static_cast<unsigned long long>(violations_total));
  const int json_rc = h.finish();
  return json_rc != 0 ? json_rc : (violations_total > 0 ? 2 : 0);
}
