// Chaos sweep: seeded fault storms swept over intensity, for every
// consensus system, with the invariant audit plane judging every trial
// (workload/audit.h).
//
// No paper figure corresponds to this bench — the paper's evaluation is
// failure-free — but the design argument of §6 is that Canopus trades
// availability under rare failures for common-case performance while never
// violating safety. The chaos sweep makes that claim falsifiable: storms
// drawn from seeded RNGs (simnet/chaos.h) hammer all four systems with
// randomized fault sequences — the fail-stop kinds (crash/recover,
// sever/heal) and the gray palette (degraded CPU, flapping links,
// duplication, bounded reordering, clock skew) — and the auditor checks
// commit-prefix agreement, no-lost-acked-writes and per-session monotonic
// reads CONTINUOUSLY. Violations must be zero for every grid point; the
// binary exits nonzero otherwise, so CI's chaos-smoke label gates on it.
//
// Emits BENCH_chaos.json (canopus-bench-v1): one series per
// (system, intensity, seed) with points "before"/"storm"/"after", scalars
//   violations, fault_events, acked_writes, committed_writes,
//   commit_spread, comparable_nodes, client_failed, recovered,
//   recovery_ms, availability_storm, availability_after
// plus figure-level per-system recovery percentiles and the violation
// total. Every trial builds an isolated simulator from seeds derived off
// its (seed, intensity) coordinates, so results are bit-identical to a
// serial run regardless of --threads — and a violating grid point can be
// replayed alone with --only=SYSTEM --seed=K --intensity=NAME (see
// EXPERIMENTS.md "Chaos sweep methodology" for the bisection recipe).
//
// Extra modes:
//   --wan                 storms on the Table 1 multi-DC topology
//                         (BENCH_chaos_wan.json, figure chaos_wan). Gates
//                         on the auditor alone; commit_spread (prefix lag
//                         across DCs) is reported, not gated — the same
//                         relaxation bench_failures --wan uses.
//   --minimize=synthetic  self-test of the storm minimizer: shrink a
//                         generated ~50-event storm against a predicate
//                         oracle with a planted 2-event core; exits
//                         nonzero unless it reduces to <= 3 events and
//                         reduces identically twice. Writes the minimal
//                         storm as canopus-storm-v1 JSON (--json=PATH,
//                         default BENCH_storm_min.json).
//   --minimize=auditor    ddmin a RED grid point (--only, --intensity and
//                         --seed required) against the real oracle "the
//                         audited trial still reports violations", and
//                         write the minimal replayable storm.
#include <algorithm>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "workload/chaos.h"
#include "workload/storm_minimizer.h"

namespace {

using namespace canopus;
using namespace canopus::workload;

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

std::string flag_value(int argc, char** argv, const char* prefix) {
  const std::size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix, len) == 0) return argv[i] + len;
  return "";
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::string_view(argv[i]) == flag) return true;
  return false;
}

/// The sweep's fault timing, shared by the sweep and --minimize=auditor so
/// a minimizer run replays the exact trial of a red grid point.
FaultTiming chaos_timing(bool quick, bool wan) {
  FaultTiming ft;
  if (wan) {  // WAN phases must dwarf the 80+ ms inter-DC round trips
    ft.warmup = 500 * kMillisecond;
    ft.fault_at = 1'500 * kMillisecond;
    ft.heal_at = 3'000 * kMillisecond;
    ft.end_at = 4'500 * kMillisecond;
    ft.drain = 1'000 * kMillisecond;
  } else {
    ft.warmup = 300 * kMillisecond;
    ft.fault_at = 700 * kMillisecond;
    ft.heal_at = quick ? 2'000 * kMillisecond : 3'500 * kMillisecond;
    ft.end_at = ft.heal_at + 700 * kMillisecond;
    ft.drain = 700 * kMillisecond;
  }
  return ft;
}

TrialConfig chaos_base(bool wan, int sim_threads) {
  TrialConfig base;
  base.sim_threads = sim_threads;
  base.groups = 3;
  base.per_group = 3;
  base.client_machines = 2;
  if (wan) {
    // Deep repair windows so a node dark through a long storm can rejoin,
    // but the DEFAULT retry timers: fault_tuned's 25 ms retries are
    // rack-scale tunings that would thrash 80+ ms WAN round trips.
    base.wan = true;
    base.zab.history_depth = 16'384;
    base.epaxos.repair_window = 16'384;
  } else {
    base = chaos_tuned(base);
  }
  return base;
}

void write_storm_json(const std::string& path,
                      const simnet::FaultSchedule& storm,
                      const StormJsonMeta& meta) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  storm_to_json(f, storm, meta);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

bool storms_equal(const simnet::FaultSchedule& x,
                  const simnet::FaultSchedule& y) {
  if (x.events().size() != y.events().size()) return false;
  for (std::size_t i = 0; i < x.events().size(); ++i) {
    const simnet::FaultEvent &a = x.events()[i], &b = y.events()[i];
    if (a.at != b.at || a.kind != b.kind || a.a != b.a || a.b != b.b ||
        a.x != b.x || a.d != b.d)
      return false;
  }
  return true;
}

/// --minimize=synthetic: end-to-end minimizer self-test with a cheap
/// predicate oracle, so CI can smoke the reduction loop without running
/// hundreds of audited trials.
int minimize_synthetic(const std::string& json_path) {
  // A noisy all-palette storm over 9 nodes, plus a planted 2-event core
  // (a reorder window on pair (3,7) with an unmistakable jitter bound).
  simnet::ChaosConfig cc;
  cc.start = 200 * kMillisecond;
  cc.end = 3'200 * kMillisecond;
  cc.events_per_s = 10.0;
  cc.min_heal = 100 * kMillisecond;
  cc.mean_extra = 150 * kMillisecond;
  cc.cpu_weight = cc.flap_weight = cc.dup_weight = cc.reorder_weight =
      cc.skew_weight = 1.0;
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < 9; ++n) nodes.push_back(n);

  const Time core_at = 1'200 * kMillisecond;
  const Time core_jitter = 12'345;  // no generated event carries this d
  auto make_storm = [&] {
    simnet::ChaosScheduleGenerator gen(42);
    std::vector<simnet::FaultEvent> evs = gen.generate(cc, nodes).events();
    evs.push_back({core_at, simnet::FaultEvent::Kind::kReorderStart, 3, 7, 0,
                   core_jitter});
    evs.push_back({2'400 * kMillisecond, simnet::FaultEvent::Kind::kReorderStop,
                   3, 7, 0, 0});
    std::stable_sort(evs.begin(), evs.end(),
                     [](const simnet::FaultEvent& a,
                        const simnet::FaultEvent& b) { return a.at < b.at; });
    simnet::FaultSchedule s;
    for (const simnet::FaultEvent& ev : evs) s.add(ev);
    return s;
  };

  // "Failure": the schedule still opens the planted reorder window on
  // (3,7) and closes it later — the minimal reproducer is that one pair.
  auto oracle = [&](const simnet::FaultSchedule& s) {
    Time opened = -1;
    for (const simnet::FaultEvent& ev : s.events())
      if (ev.kind == simnet::FaultEvent::Kind::kReorderStart && ev.a == 3 &&
          ev.b == 7 && ev.d == core_jitter)
        opened = ev.at;
    if (opened < 0) return false;
    for (const simnet::FaultEvent& ev : s.events())
      if (ev.kind == simnet::FaultEvent::Kind::kReorderStop && ev.a == 3 &&
          ev.b == 7 && ev.at > opened)
        return true;
    return false;
  };

  auto reduce = [&] {
    StormMinimizer mini(oracle);
    return mini.minimize(make_storm());
  };
  const MinimizeResult first = reduce();
  const MinimizeResult second = reduce();  // same seed => same reduction

  std::printf("synthetic storm: %zu events -> %zu (probes %zu, "
              "duration shrinks %zu)\n",
              first.original_events, first.minimal_events, first.probes,
              first.duration_shrinks);
  bool ok = true;
  if (!first.reproduced) {
    std::fprintf(stderr, "FAIL: oracle rejected the full storm\n");
    ok = false;
  }
  if (first.minimal_events > 3) {
    std::fprintf(stderr, "FAIL: minimal storm has %zu events (want <= 3)\n",
                 first.minimal_events);
    ok = false;
  }
  if (!storms_equal(first.minimal, second.minimal) ||
      first.probes != second.probes) {
    std::fprintf(stderr, "FAIL: reduction is not deterministic\n");
    ok = false;
  }
  if (!oracle(first.minimal)) {
    std::fprintf(stderr, "FAIL: minimal storm no longer trips the oracle\n");
    ok = false;
  }

  StormJsonMeta meta;
  meta.system = "synthetic";
  meta.intensity = "self-test";
  meta.seed = 42;
  meta.reproduced = first.reproduced;
  meta.original_events = first.original_events;
  meta.probes = first.probes;
  meta.duration_shrinks = first.duration_shrinks;
  write_storm_json(json_path, first.minimal, meta);
  return ok ? 0 : 2;
}

/// --minimize=auditor: shrink one red grid point against the real oracle.
int minimize_auditor(int argc, char** argv, const std::string& json_path) {
  const bool quick = has_flag(argc, argv, "--quick");
  const std::string sys_name = flag_value(argc, argv, "--only=");
  const std::string int_name = flag_value(argc, argv, "--intensity=");
  const std::string seed_str = flag_value(argc, argv, "--seed=");
  if (sys_name.empty() || int_name.empty() || seed_str.empty()) {
    std::fprintf(stderr,
                 "error: --minimize=auditor needs the full grid coordinates: "
                 "--only=SYSTEM --intensity=NAME --seed=K\n");
    return 1;
  }

  bool found_sys = false;
  System sys = System::kCanopus;
  for (System s : kAllSystems)
    if (std::string(system_name(s)).find(sys_name) != std::string::npos) {
      sys = s;
      found_sys = true;
      break;
    }
  std::vector<ChaosIntensity> intensities = standard_intensities();
  intensities.push_back(
      {"extreme", 50.0, 2, 6, 100 * kMillisecond, 120 * kMillisecond});
  for (ChaosIntensity& g : gray_intensities())
    intensities.push_back(std::move(g));
  const ChaosIntensity* ci = nullptr;
  for (const ChaosIntensity& c : intensities)
    if (c.name == int_name) ci = &c;
  if (!found_sys || ci == nullptr) {
    std::fprintf(stderr, "error: unknown system or intensity\n");
    return 1;
  }

  const FaultTiming ft = chaos_timing(quick, /*wan=*/false);
  TrialConfig tc = chaos_base(/*wan=*/false, /*sim_threads=*/1);
  tc.system = sys;
  tc.seed = std::stoull(seed_str);
  tc.warmup = ft.warmup;
  const double rate = 12'000;

  const simnet::FaultSchedule storm = chaos_storm(tc, *ci, ft, rate);
  std::printf("grid point %s/%s/seed %s: storm of %zu events; probing...\n",
              system_name(sys), int_name.c_str(), seed_str.c_str(),
              storm.events().size());
  std::size_t probe_no = 0;
  StormMinimizer mini([&](const simnet::FaultSchedule& candidate) {
    const ChaosResult r = run_chaos_trial(tc, *ci, ft, rate, &candidate);
    std::printf("  probe %zu: %zu events -> %llu violations\n", ++probe_no,
                candidate.events().size(),
                static_cast<unsigned long long>(r.violations));
    return r.violations > 0;
  });
  const MinimizeResult res = mini.minimize(storm);
  if (!res.reproduced) {
    std::printf("grid point is green — nothing to minimize\n");
    return 0;
  }
  std::printf("minimized: %zu events -> %zu (probes %zu, duration shrinks "
              "%zu)\n",
              res.original_events, res.minimal_events, res.probes,
              res.duration_shrinks);
  StormJsonMeta meta;
  meta.system = system_name(sys);
  meta.intensity = int_name;
  meta.seed = tc.seed;
  meta.offered_rate = rate;
  meta.reproduced = true;
  meta.original_events = res.original_events;
  meta.probes = res.probes;
  meta.duration_shrinks = res.duration_shrinks;
  write_storm_json(json_path, res.minimal, meta);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace canopus;
  using namespace canopus::workload;
  const std::string minimize = flag_value(argc, argv, "--minimize=");
  if (!minimize.empty()) {
    std::string json_path = flag_value(argc, argv, "--json=");
    if (json_path.empty()) json_path = "BENCH_storm_min.json";
    if (minimize == "synthetic") return minimize_synthetic(json_path);
    if (minimize == "auditor") return minimize_auditor(argc, argv, json_path);
    std::fprintf(stderr, "error: --minimize must be synthetic or auditor\n");
    return 1;
  }

  const bool wan = has_flag(argc, argv, "--wan");
  bench::Harness h(
      argc, argv, wan ? "chaos_wan" : "chaos",
      wan ? "Chaos sweep on the Table 1 multi-DC topology, invariant-audited"
          : "Chaos sweep: seeded fault storms x intensity, invariant-audited",
      wan ? "Sec 8.2 topology (Table 1); no paper figure"
          : "Sec 6 (safety under failures); no paper figure");
  const bool quick = h.quick();

  // Bisection filters: replay one slice of the grid (same derived seeds as
  // the full sweep — filtering changes WHICH trials run, never their bits).
  const std::string only_system = flag_value(argc, argv, "--only=");
  const std::string only_intensity = flag_value(argc, argv, "--intensity=");
  const std::string only_seed = flag_value(argc, argv, "--seed=");

  const FaultTiming ft = chaos_timing(quick, wan);
  TrialConfig base = chaos_base(wan, h.sim_threads());
  base.warmup = ft.warmup;
  const double rate = wan ? 6'000 : 12'000;

  // The intensity axis. LAN: the classic escalation plus the gray palette
  // (one pure storm per gray kind, then the all-kinds mix). WAN: a reduced
  // grid — long phases make each trial ~4x a LAN one.
  std::vector<ChaosIntensity> intensities;
  std::vector<std::uint64_t> classic_seeds, gray_seeds;
  if (wan) {
    for (ChaosIntensity& ci : standard_intensities())
      if (ci.name != "high") intensities.push_back(std::move(ci));
    for (ChaosIntensity& ci : gray_intensities())
      if (ci.name == "gray-mix") intensities.push_back(std::move(ci));
    classic_seeds = gray_seeds = quick ? std::vector<std::uint64_t>{1}
                                       : std::vector<std::uint64_t>{1, 2};
  } else {
    intensities = standard_intensities();
    if (!quick)
      intensities.push_back(
          {"extreme", 50.0, 2, 6, 100 * kMillisecond, 120 * kMillisecond});
    for (ChaosIntensity& ci : gray_intensities())
      intensities.push_back(std::move(ci));
    classic_seeds = quick ? std::vector<std::uint64_t>{1, 2, 3}
                          : std::vector<std::uint64_t>{1, 2, 3, 4, 5};
    gray_seeds = quick ? std::vector<std::uint64_t>{1}
                       : std::vector<std::uint64_t>{1, 2, 3};
  }

  struct Job {
    System system;
    const ChaosIntensity* intensity;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  for (System sys : kAllSystems) {
    if (!only_system.empty() &&
        std::string(system_name(sys)).find(only_system) == std::string::npos)
      continue;
    for (const ChaosIntensity& ci : intensities) {
      if (!only_intensity.empty() && ci.name != only_intensity) continue;
      const bool gray = ci.name.rfind("gray-", 0) == 0;
      for (std::uint64_t seed : gray ? gray_seeds : classic_seeds) {
        if (!only_seed.empty() && std::to_string(seed) != only_seed) continue;
        jobs.push_back({sys, &ci, seed});
      }
    }
  }
  if (jobs.empty()) {
    std::fprintf(stderr, "error: --only/--intensity/--seed matched nothing\n");
    return 1;
  }

  std::vector<ChaosResult> results(jobs.size());
  h.pool().run_indexed(jobs.size(), [&](std::size_t i) {
    TrialConfig tc = base;
    tc.system = jobs[i].system;
    tc.seed = jobs[i].seed;
    results[i] = run_chaos_trial(tc, *jobs[i].intensity, ft, rate);
  });

  std::uint64_t violations_total = 0;
  std::uint64_t retention_breaches = 0;
  std::string last_system;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ChaosResult& r = results[i];
    if (r.system != last_system) {
      std::printf("\n--- %s ---\n", r.system.c_str());
      last_system = r.system;
    }
    std::printf(
        "  %-12s seed %llu  %2llu faults  avail %5.1f%%/%5.1f%%/%5.1f%%  "
        "%s  %s\n",
        r.intensity.c_str(), static_cast<unsigned long long>(r.seed),
        static_cast<unsigned long long>(r.fault_events),
        100 * r.before.throughput / rate, 100 * r.storm.throughput / rate,
        100 * r.after.throughput / rate,
        r.violations == 0 ? "clean" : "VIOLATED",
        r.recovered
            ? (std::string("recovered in ") +
               std::to_string(r.recovery_ns / kMillisecond) + " ms")
                  .c_str()
            : "no post-storm completion");
    violations_total += r.violations;
    if (!r.retention_ok) ++retention_breaches;
    for (const AuditViolation& v : r.violation_details)
      std::printf("      !! %s at t=%lld ms: %s\n",
                  audit_violation_name(v.kind),
                  static_cast<long long>(v.at / kMillisecond),
                  v.detail.c_str());

    auto& sr = h.add_series(r.system + " / " + r.intensity + " / seed " +
                            std::to_string(r.seed));
    sr.attr("system", r.system)
        .attr("intensity", r.intensity)
        .attr("seed", std::to_string(r.seed))
        .scalar("violations", static_cast<double>(r.violations))
        .scalar("fault_events", static_cast<double>(r.fault_events))
        .scalar("acked_writes", static_cast<double>(r.acked_writes))
        .scalar("observed_reads", static_cast<double>(r.observed_reads))
        .scalar("committed_writes", static_cast<double>(r.committed_writes))
        .scalar("commit_spread", static_cast<double>(r.commit_spread))
        .scalar("comparable_nodes", static_cast<double>(r.comparable_nodes))
        .scalar("client_failed", static_cast<double>(r.client_failed))
        .scalar("recovered", r.recovered ? 1 : 0)
        .scalar("recovery_ms",
                r.recovered
                    ? static_cast<double>(r.recovery_ns) / kMillisecond
                    : -1)
        .scalar("snapshots_installed",
                static_cast<double>(r.snapshots_installed))
        .scalar("log_entries_retained",
                static_cast<double>(r.max_log_retained))
        .scalar("retention_ok", r.retention_ok ? 1 : 0)
        .scalar("availability_storm", r.storm.throughput / rate)
        .scalar("availability_after", r.after.throughput / rate)
        .point("before", r.before)
        .point("storm", r.storm)
        .point("after", r.after);
  }

  // Per-system aggregates over the grid: recovery-time percentiles (over
  // trials that recovered) and how many did.
  for (System sys : kAllSystems) {
    std::vector<double> rec_ms;
    int trials = 0, recovered = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].system != sys) continue;
      ++trials;
      if (results[i].recovered) {
        ++recovered;
        rec_ms.push_back(static_cast<double>(results[i].recovery_ns) /
                         kMillisecond);
      }
    }
    if (trials == 0) continue;
    const std::string name = system_name(sys);
    h.add_scalar("trials_" + name, trials);
    h.add_scalar("recovered_trials_" + name, recovered);
    h.add_scalar("recovery_p50_ms_" + name, percentile(rec_ms, 0.50));
    h.add_scalar("recovery_p90_ms_" + name, percentile(rec_ms, 0.90));
    h.add_scalar("recovery_max_ms_" + name, percentile(rec_ms, 1.0));
    std::printf("\n%s: %d/%d trials recovered, recovery p50 %.1f ms  "
                "p90 %.1f ms\n",
                name.c_str(), recovered, trials, percentile(rec_ms, 0.50),
                percentile(rec_ms, 0.90));
  }

  h.add_scalar("violations_total", static_cast<double>(violations_total));
  h.add_scalar("retention_breaches", static_cast<double>(retention_breaches));
  std::printf("\ninvariant violations: %llu   retention breaches: %llu\n",
              static_cast<unsigned long long>(violations_total),
              static_cast<unsigned long long>(retention_breaches));
  // Gate on the auditor plus the compaction bound — in WAN mode prefix lag
  // across DCs (commit_spread) is expected during storms and is reported
  // per series, never gated (the bench_failures --wan relaxation). A node
  // retaining more log than its configured bound is a compaction bug at
  // any latitude.
  const int json_rc = h.finish();
  return json_rc != 0
             ? json_rc
             : (violations_total > 0 || retention_breaches > 0 ? 2 : 0);
}
