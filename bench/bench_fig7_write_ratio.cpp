// Figure 7: performance with different write ratios — 9 nodes across 3
// datacenters; Canopus at 1%, 20% and 50% writes vs EPaxos (whose curves
// are write-ratio-independent, shown at 20%).
//
// Expected shape (paper): Canopus throughput rises as the workload gets
// more read-heavy (3.6 M at 1% vs 2.65 M at 20%); even at 50% writes it
// stays >= 2.5x above EPaxos.
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace canopus;
  using namespace canopus::workload;
  bench::Harness h(argc, argv, "fig7",
                   "Figure 7: write-ratio sweep, 3 DCs x 3 nodes",
                   "Fig 7, Sec 8.2.1");
  const bool quick = h.quick();

  struct Series {
    const char* name;
    System system;
    double writes;
  };
  const std::vector<Series> series{
      {"Canopus 1%-writes", System::kCanopus, 0.01},
      {"Canopus 20%-writes", System::kCanopus, 0.2},
      {"Canopus 50%-writes", System::kCanopus, 0.5},
      {"EPaxos 20%-writes", System::kEPaxos, 0.2},
  };

  double canopus50 = 0, epaxos20 = 0;
  for (const Series& s : series) {
    TrialConfig tc;
    tc.sim_threads = h.sim_threads();
    tc.runtime = h.runtime_kind();
    tc.system = s.system;
    tc.wan = true;
    tc.groups = 3;
    tc.per_group = 3;
    tc.write_ratio = s.writes;
    tc.warmup = 1'200 * kMillisecond;
    tc.measure = quick ? kSecond : 1'500 * kMillisecond;
    tc.drain = 1'500 * kMillisecond;
    tc.canopus.pipelining = true;
    tc.epaxos.batch_interval = 5 * kMillisecond;

    std::vector<double> rates;
    for (double r = 100'000; r <= 4'000'000; r *= quick ? 2.3 : 1.7)
      rates.push_back(r);
    const auto sweep = sweep_rates(h.pool(), make_trial(tc), rates);

    std::printf("\n  %s\n", s.name);
    const Time base = sweep.front().median;
    double best = 0;
    for (const auto& m : sweep) {
      std::printf("    offered %8.3f M  ->  %8.3f Mreq/s   median %8.2f ms\n",
                  bench::mreq(m.offered), bench::mreq(m.throughput),
                  bench::ms(m.median));
      if (m.median <= base + base / 2 && m.throughput > best)
        best = m.throughput;
    }
    std::printf("    max throughput at <=1.5x base latency: %.3f Mreq/s\n",
                bench::mreq(best));
    if (s.system == System::kCanopus && s.writes == 0.5) canopus50 = best;
    if (s.system == System::kEPaxos) epaxos20 = best;
    auto& sr = h.add_series(s.name);
    sr.attr("system", system_name(s.system))
        .scalar("write_ratio", s.writes)
        .scalar("max_at_1p5x_base_latency_req_s", best);
    sr.sweep = sweep;
  }
  const double ratio = epaxos20 > 0 ? canopus50 / epaxos20 : 0.0;
  std::printf("\nShape vs paper: Canopus-50%% / EPaxos = %.1fx (paper: ~2.5x)\n",
              ratio);
  h.add_scalar("canopus50_over_epaxos20", ratio);
  return h.finish();
}
