// Ablation: LOT shape at a fixed group size (§9 "Experiments at large
// scale": nodes can be added by growing super-leaves or adding them; the
// tree can also be made taller).
//
// Compares 27 nodes arranged as:
//   3 super-leaves x 9   (paper's shape, height 2)
//   9 super-leaves x 3   (height 2, more fetch targets per round)
//   9 super-leaves x 3, arity 3 (height 3: an extra round per cycle)
#include <memory>
#include <vector>

#include "bench_util.h"
#include "canopus/node.h"

namespace {

using namespace canopus;
using namespace canopus::workload;

Measurement run_shape(int sls, int per_sl, int arity, double rate,
                      bool quick, unsigned sim_threads) {
  simnet::Simulator sim(7);
  simnet::RackConfig rc;
  rc.racks = sls;
  rc.servers_per_rack = per_sl;
  rc.clients_per_rack = 2;
  simnet::Cluster cluster = simnet::build_multi_rack(rc);
  if (sim_threads > 1)
    sim.configure_shards(cluster.topo,
                         simnet::make_shard_map(cluster.topo, sim_threads));
  simnet::Network net(sim, cluster.topo, simnet::CpuModel{2'000, 2'000, 2.5});

  lot::LotConfig lc;
  lc.arity = arity;
  for (int g = 0; g < sls; ++g) {
    lc.super_leaves.emplace_back();
    for (int s = 0; s < per_sl; ++s)
      lc.super_leaves.back().push_back(
          cluster.servers[static_cast<std::size_t>(g * per_sl + s)]);
  }
  auto lot = std::make_shared<const lot::Lot>(lot::Lot::build(lc));

  std::vector<std::unique_ptr<core::CanopusNode>> nodes;
  for (NodeId s : cluster.servers) {
    nodes.push_back(std::make_unique<core::CanopusNode>(lot, core::Config{}));
    net.attach(s, *nodes.back());
  }

  auto rec = std::make_shared<LatencyRecorder>();
  const Time warmup = 400 * kMillisecond;
  const Time window = quick ? 600 * kMillisecond : kSecond;
  rec->set_window(warmup, warmup + window);
  std::vector<std::unique_ptr<OpenLoopClient>> clients;
  Rng seeder(13);
  for (std::size_t i = 0; i < cluster.clients.size(); ++i) {
    ClientConfig cc;
    const int group = cluster.topo.rack_of(cluster.clients[i]);
    for (int s = 0; s < per_sl; ++s)
      cc.servers.push_back(
          cluster.servers[static_cast<std::size_t>(group * per_sl + s)]);
    cc.rate_per_s = rate / static_cast<double>(cluster.clients.size());
    cc.stop_at = warmup + window;
    clients.push_back(std::make_unique<OpenLoopClient>(cc, rec, seeder()));
    net.attach(cluster.clients[i], *clients.back());
  }
  const Time deadline = warmup + window + 400 * kMillisecond;
  if (sim_threads > 1)
    sim.run_parallel_until(deadline);
  else
    sim.run_until(deadline);
  return canopus::workload::measure(*rec, rate);
}

}  // namespace

int main(int argc, char** argv) {
  canopus::bench::Harness h(
      argc, argv, "ablation_lot_shape",
      "Ablation: LOT shape at 27 nodes (20% writes, 1.0 Mreq/s offered)",
      "design discussion in Sec 9");
  const bool quick = h.quick();

  struct Shape {
    const char* name;
    int sls, per_sl, arity;
  };
  const std::vector<Shape> shapes{
      {"3 super-leaves x 9 (height 2)", 3, 9, 0},
      {"9 super-leaves x 3 (height 2)", 9, 3, 0},
      {"9 super-leaves x 3 (arity 3, height 3)", 9, 3, 3},
  };
  std::vector<Measurement> results(shapes.size());
  h.pool().run_indexed(shapes.size(), [&](std::size_t i) {
    results[i] =
        run_shape(shapes[i].sls, shapes[i].per_sl, shapes[i].arity,
                  1'000'000, quick, h.sim_threads());
  });
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    canopus::bench::print_measurement_row(shapes[i].name, results[i]);
    auto& sr = h.add_series(shapes[i].name);
    sr.scalar("super_leaves", shapes[i].sls)
        .scalar("per_super_leaf", shapes[i].per_sl)
        .scalar("arity", shapes[i].arity);
    sr.sweep = {results[i]};
  }
  std::printf("\nExpected: wider super-leaves amortize cross-rack fetches;\n"
              "taller trees add a round of latency per cycle but reduce\n"
              "per-round fan-in — the paper's guidance is to keep\n"
              "super-leaf work shorter than the inter-super-leaf RTT.\n");
  return h.finish();
}
