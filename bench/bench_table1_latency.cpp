// Table 1: inter-datacenter RTTs. Validates that the simulated WAN
// reproduces the latency matrix the paper measured on EC2 — the input that
// drives every multi-DC experiment.
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "simnet/network.h"
#include "simnet/payload_testing.h"
#include "simnet/topology.h"

namespace {

using namespace canopus;

/// Ping-pong process: replies to every probe.
struct Ponger : simnet::Process {
  void on_message(const simnet::Message& m) override {
    if (m.as<int>() != nullptr) send(m.src(), 64, 'p');
  }
};

struct Pinger : simnet::Process {
  Time sent_at = 0;
  Time rtt = -1;
  NodeId target = kInvalidNode;

  void on_message(const simnet::Message& m) override {
    if (m.as<char>() != nullptr) rtt = sim().now() - sent_at;
  }
  void ping() {
    sent_at = sim().now();
    send(target, 64, 1);
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace canopus;
  bench::Harness h(argc, argv, "table1",
                   "Table 1 calibration: inter-DC round-trip times (ms)",
                   "Table 1 (measured EC2 latencies)");

  const auto& rtt = simnet::table1_rtt_ms();
  const auto& names = simnet::table1_site_names();
  const int dcs = static_cast<int>(rtt.size());

  simnet::WanConfig wc;
  wc.servers_per_dc.assign(static_cast<std::size_t>(dcs), 1);
  wc.rtt_ms = rtt;
  simnet::Cluster cluster = simnet::build_multi_dc(wc);

  auto& matrix = h.add_series("rtt_matrix");

  // No CPU cost: we are measuring pure propagation like ping does.
  double max_err = 0;
  std::printf("\n      ");
  for (int j = 0; j < dcs; ++j) std::printf("%10s", names[static_cast<size_t>(j)]);
  std::printf("\n");
  for (int i = 0; i < dcs; ++i) {
    std::printf("  %-4s", names[static_cast<size_t>(i)]);
    for (int j = 0; j <= i; ++j) {
      simnet::Simulator sim;
      simnet::Network net(sim, cluster.topo, simnet::CpuModel{0, 0, 0});
      Pinger pinger;
      Ponger ponger;
      if (i == j) {
        // Intra-DC: need two nodes in the same DC; rebuild with 2 per DC.
        simnet::WanConfig wc2 = wc;
        wc2.servers_per_dc.assign(static_cast<std::size_t>(dcs), 2);
        simnet::Cluster c2 = simnet::build_multi_dc(wc2);
        simnet::Network net2(sim, c2.topo, simnet::CpuModel{0, 0, 0});
        pinger.target = c2.servers[static_cast<size_t>(2 * i + 1)];
        net2.attach(c2.servers[static_cast<size_t>(2 * i)], pinger);
        net2.attach(c2.servers[static_cast<size_t>(2 * i + 1)], ponger);
        sim.at(0, [&] { pinger.ping(); });
        sim.run();
      } else {
        pinger.target = cluster.servers[static_cast<size_t>(j)];
        net.attach(cluster.servers[static_cast<size_t>(i)], pinger);
        net.attach(cluster.servers[static_cast<size_t>(j)], ponger);
        sim.at(0, [&] { pinger.ping(); });
        sim.run();
      }
      const double measured = static_cast<double>(pinger.rtt) / kMillisecond;
      const double expect = rtt[static_cast<size_t>(i)][static_cast<size_t>(j)];
      max_err = std::max(max_err, std::abs(measured - expect));
      matrix.scalar(std::string(names[static_cast<size_t>(i)]) + "-" +
                        names[static_cast<size_t>(j)] + "_ms",
                    measured);
      std::printf("%10.2f", measured);
    }
    std::printf("\n");
  }
  std::printf("\n  paper values: IR-CA 133, FF-SY 322, TK intra 0.13, ...\n");
  std::printf("  max |measured - paper| = %.3f ms (serialization of the 64B probe)\n",
              max_err);
  h.add_scalar("max_abs_error_ms", max_err);
  return h.finish();
}
