// Figure 6: multi-datacenter throughput and median completion time with
// 3, 5 and 7 datacenters x 3 nodes (Table 1 latencies), 20% writes.
//
// Canopus runs pipelined (a new cycle every 5 ms or 1000 requests, §8.2);
// EPaxos uses the same batch interval, zero interference, latency-probing
// quorums (its fast path already reads the nearest quorum here), thrifty
// off.
//
// Expected shape (paper): Canopus reaches millions of requests/second and
// its throughput GROWS with the number of datacenters (2.6 -> 3.8 -> 4.7 M
// in the paper); EPaxos stays several times lower. Completion times are
// WAN-RTT-bound for both.
#include <string>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace canopus;
  using namespace canopus::workload;
  bench::Harness h(argc, argv, "fig6",
                   "Figure 6: multi-DC throughput and median completion time",
                   "Fig 6, Sec 8.2");
  const bool quick = h.quick();

  std::vector<double> canopus_max;
  std::vector<double> epaxos_max;
  const std::vector<int> dc_counts = quick ? std::vector<int>{3, 7}
                                           : std::vector<int>{3, 5, 7};

  for (int dcs : dc_counts) {
    std::printf("\n--- %d datacenters x 3 nodes (%d nodes) ---\n", dcs,
                3 * dcs);
    for (bool canopus : {true, false}) {
      TrialConfig tc;
      tc.sim_threads = h.sim_threads();
      tc.runtime = h.runtime_kind();
      tc.system = canopus ? System::kCanopus : System::kEPaxos;
      tc.wan = true;
      tc.groups = dcs;
      tc.per_group = 3;
      tc.client_machines = 5;
      tc.warmup = 1'200 * kMillisecond;  // several WAN RTTs
      tc.measure = quick ? kSecond : 1'500 * kMillisecond;
      tc.drain = 1'500 * kMillisecond;
      tc.canopus.pipelining = true;
      tc.canopus.cycle_interval = 5 * kMillisecond;
      tc.canopus.max_batch = 1'000;
      tc.epaxos.batch_interval = 5 * kMillisecond;

      std::vector<double> rates;
      for (double r = canopus ? 200'000 : 100'000;
           r <= (canopus ? 4'000'000 : 1'200'000); r *= quick ? 2.3 : 1.7)
        rates.push_back(r);
      const auto sweep = sweep_rates(h.pool(), make_trial(tc), rates);

      std::printf("  %s\n", canopus ? "Canopus (pipelined, 5ms/1000-req cycles)"
                                    : "EPaxos (5ms batches, 0%% interference)");
      // The paper marks max throughput where latency reaches 1.5x the
      // unloaded (base) latency.
      const Time base = sweep.front().median;
      double best = 0;
      for (const auto& m : sweep) {
        std::printf("    offered %8.3f M  ->  %8.3f Mreq/s   median %8.2f ms\n",
                    bench::mreq(m.offered), bench::mreq(m.throughput),
                    bench::ms(m.median));
        if (m.median <= base + base / 2 &&
            m.throughput >= 0.95 * m.offered && m.throughput > best)
          best = m.throughput;
      }
      std::printf("    max throughput at <=1.5x base latency: %.3f Mreq/s\n",
                  bench::mreq(best));
      (canopus ? canopus_max : epaxos_max).push_back(best);
      auto& sr = h.add_series(std::string(canopus ? "Canopus" : "EPaxos") +
                              " @ " + std::to_string(dcs) + " DCs");
      sr.attr("system", system_name(tc.system))
          .scalar("datacenters", dcs)
          .scalar("max_at_1p5x_base_latency_req_s", best);
      sr.sweep = sweep;
    }
  }

  std::printf("\nShape vs paper:\n");
  for (std::size_t i = 0; i < dc_counts.size(); ++i) {
    const double ratio =
        epaxos_max[i] > 0 ? canopus_max[i] / epaxos_max[i] : 0.0;
    std::printf("  %d DCs: Canopus/EPaxos = %.1fx (paper: ~4x-13.6x)\n",
                dc_counts[i], ratio);
    h.add_scalar("canopus_over_epaxos_" + std::to_string(dc_counts[i]) + "dc",
                 ratio);
  }
  const double scaling = canopus_max.front() > 0
                             ? canopus_max.back() / canopus_max.front()
                             : 0.0;
  std::printf("  Canopus scaling %d->%d DCs: %.2fx (paper: grows, 2.6->4.7M)\n",
              dc_counts.front(), dc_counts.back(), scaling);
  h.add_scalar("canopus_dc_scaling", scaling);
  return h.finish();
}
