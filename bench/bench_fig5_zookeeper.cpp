// Figure 5: ZKCanopus vs ZooKeeper — throughput vs median completion time
// at 9 and 27 nodes (20% writes, single datacenter, one znode's worth of
// hot keys served from the same KV service layer).
//
// ZooKeeper runs Zab with a leader + 5 followers; all remaining nodes are
// observers (§8.1.2). ZKCanopus is the identical KV service with the
// broadcast layer swapped for Canopus, where every node participates.
// Standalone Raft (not in the paper) rides along as a third curve: the
// same single-leader topology as ZooKeeper minus the znode pipeline cost,
// isolating how much of ZooKeeper's collapse is the coordinator pattern
// itself versus its per-write processing.
//
// Expected shape (paper): ZooKeeper's curve collapses at a small fraction
// of ZKCanopus' throughput (the centralized coordinator saturates); at 27
// nodes the gap for read-heavy workloads exceeds an order of magnitude
// ("increases the throughput of ZooKeeper by more than 16x"). When
// unloaded, ZKCanopus' completion time is slightly higher (tree overlay
// round trips vs direct broadcast).
#include <string>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace canopus;
  using namespace canopus::workload;
  bench::Harness h(
      argc, argv, "fig5",
      "Figure 5: ZKCanopus vs ZooKeeper (throughput vs median latency)",
      "Fig 5, Sec 8.1.2");
  const bool quick = h.quick();

  struct Entry {
    System system;
    const char* label;
    double start_rate;
    double max_rate;
  };
  // Raft rides along as the third coordination-service baseline: a single
  // cluster-wide leader like ZooKeeper, but without the znode pipeline
  // cost — it sits between the two curves.
  const std::vector<Entry> entries{
      {System::kZab, "ZooKeeper (leader + 5 followers + observers)", 20'000,
       800'000},
      {System::kRaft, "Raft (single cluster-wide group)", 20'000, 1'600'000},
      {System::kCanopus, "ZKCanopus (all nodes in consensus)", 100'000,
       4'000'000},
  };
  for (int pr : {3, 9}) {
    std::printf("\n--- %d nodes ---\n", 3 * pr);
    for (const Entry& e : entries) {
      TrialConfig tc;
      tc.sim_threads = h.sim_threads();
      tc.runtime = h.runtime_kind();
      tc.system = e.system;
      tc.groups = 3;
      tc.per_group = pr;
      tc.warmup = 400 * kMillisecond;
      tc.measure = quick ? 600 * kMillisecond : kSecond;
      tc.drain = 400 * kMillisecond;
      tc.zab.followers = 5;

      std::vector<double> rates;
      for (double r = e.start_rate; r <= e.max_rate; r *= quick ? 2.4 : 1.7)
        rates.push_back(r);
      const auto sweep = sweep_rates(h.pool(), make_trial(tc), rates);

      std::printf("  %s\n", e.label);
      double best = 0;
      for (const auto& m : sweep) {
        std::printf("    offered %8.3f M  ->  %8.3f Mreq/s   median %8.3f ms\n",
                    bench::mreq(m.offered), bench::mreq(m.throughput),
                    bench::ms(m.median));
        // Healthy = timely AND complete: a coordinator that still answers
        // reads while its write pipeline starves must not score the reads
        // (the 20% write share has to finish too).
        if (m.median <= 10 * kMillisecond &&
            m.throughput >= 0.95 * m.offered && m.throughput > best)
          best = m.throughput;
      }
      std::printf("    max healthy throughput: %.3f Mreq/s\n",
                  bench::mreq(best));
      const char* series_base = e.system == System::kCanopus
                                    ? "ZKCanopus"
                                    : system_name(e.system);
      auto& sr = h.add_series(std::string(series_base) + " @ " +
                              std::to_string(3 * pr) + " nodes");
      sr.attr("system", system_name(tc.system))
          .scalar("nodes", 3 * pr)
          .scalar("max_healthy_req_s", best);
      sr.sweep = sweep;
    }
  }
  return h.finish();
}
