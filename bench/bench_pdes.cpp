// PDES scaling: wall-clock speedup of the sharded simulation kernel
// (ISSUE 6) on (a) the Figure 6 multi-DC topology and (b) a 1000-node
// stress topology, at 1 / 2 / 4 shard worker threads.
//
// Every parallel run is diffed against its serial twin — fingerprint,
// commit counts, NetworkStats, events processed — and the bench EXITS
// NONZERO on any mismatch: bit-identity is the kernel's cardinal
// constraint, speedup is merely the payoff. Speedup is reported honestly
// for the machine at hand (the "hardware_threads" scalar records how many
// cores were available): on a single-core runner the conservative kernel's
// null-message rounds make parallel runs SLOWER than serial, which is
// expected and documented in EXPERIMENTS.md ("PDES scaling").
//
// This bench drives sim_threads itself (that is its subject); the
// harness-level --sim-threads flag is ignored here.
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace {

using namespace canopus;
using namespace canopus::workload;

struct RunResult {
  std::uint64_t fingerprint = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t events = 0;
  double wall_s = 0;

  bool same_trace(const RunResult& o) const {
    return fingerprint == o.fingerprint && writes == o.writes &&
           reads == o.reads && messages == o.messages && bytes == o.bytes &&
           events == o.events;
  }
};

/// One fixed-rate trial, timed and digested (run_trial() keeps only the
/// latency measurement; the identity diff needs the trace counters).
RunResult run_one(TrialConfig tc, unsigned sim_threads, double rate) {
  tc.sim_threads = sim_threads;
  const auto t0 = std::chrono::steady_clock::now();

  const std::uint64_t trial_seed = derive_seed(tc.seed, 0xbde5ULL);
  simnet::Simulator sim(trial_seed);
  simnet::Cluster cluster = build_cluster(tc);
  if (tc.sim_threads > 1)
    sim.configure_shards(cluster.topo,
                         simnet::make_shard_map(cluster.topo, tc.sim_threads));
  simnet::Network net(sim, cluster.topo, tc.cpu);
  auto service = make_service(tc, cluster, net);
  auto recorder = std::make_shared<LatencyRecorder>();
  recorder->set_window(tc.warmup, tc.warmup + tc.measure);
  auto clients = attach_clients(tc, cluster, net, recorder, rate, trial_seed,
                                tc.warmup + tc.measure);
  const Time deadline = tc.warmup + tc.measure + tc.drain;
  if (tc.sim_threads > 1)
    sim.run_parallel_until(deadline);
  else
    sim.run_until(deadline);

  RunResult r;
  r.fingerprint = service->commit_fingerprint(0);
  r.writes = service->committed_writes(0);
  r.reads = service->served_reads(0);
  r.messages = net.stats().messages;
  r.bytes = net.stats().bytes;
  r.events = sim.events_processed();
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  return r;
}

/// Runs one topology across shard counts, prints the scaling table, emits
/// one JSON series per point, and returns whether every parallel run
/// matched the serial trace.
bool scale_one(canopus::bench::Harness& h, const std::string& label,
               const TrialConfig& tc, double rate,
               const std::vector<unsigned>& threads, double* speedup_at_max,
               double* serial_wall) {
  std::printf("\n--- %s ---\n", label.c_str());
  std::printf("%12s  %10s  %10s  %10s  %s\n", "sim-threads", "wall (s)",
              "speedup", "Mevents", "trace");

  bool all_identical = true;
  RunResult serial;
  for (unsigned t : threads) {
    const RunResult r = run_one(tc, t, rate);
    const bool first = t == threads.front();
    if (first) serial = r;
    const bool identical = r.same_trace(serial);
    all_identical = all_identical && identical;
    const double speedup = r.wall_s > 0 ? serial.wall_s / r.wall_s : 0.0;
    std::printf("%12u  %10.2f  %9.2fx  %10.2f  %s\n", t, r.wall_s, speedup,
                static_cast<double>(r.events) / 1e6,
                first ? "(serial baseline)"
                      : (identical ? "identical" : "MISMATCH"));
    h.add_series(label + " @ " + std::to_string(t) + " sim-threads")
        .attr("topology", label)
        .scalar("sim_threads", t)
        .scalar("wall_seconds", r.wall_s)
        .scalar("speedup_vs_serial", speedup)
        .scalar("events", static_cast<double>(r.events))
        .scalar("committed_writes", static_cast<double>(r.writes))
        .scalar("identical_to_serial", identical ? 1 : 0);
    if (t == threads.back()) *speedup_at_max = speedup;
  }
  *serial_wall = serial.wall_s;
  return all_identical;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "pdes",
                   "PDES scaling: sharded event kernel, serial-identical",
                   "ISSUE 6; DESIGN.md Sec 10");
  const bool quick = h.quick();
  const std::vector<unsigned> threads{1, 2, 4};

  bool ok = true;
  double speedup = 0, wall = 0;

  // (a) Figure 6 multi-DC: one shard per datacenter, WAN one-way latencies
  // (tens of ms) as lookahead — the paper's own deployment shape and the
  // kernel's best case: shards run nearly decoupled between barriers.
  {
    TrialConfig tc;
    tc.system = System::kCanopus;
    tc.wan = true;
    tc.groups = 7;  // the full Table 1 site set
    tc.per_group = 3;
    tc.client_machines = 5;
    tc.warmup = 600 * kMillisecond;
    tc.measure = quick ? kSecond : 2 * kSecond;
    tc.drain = 600 * kMillisecond;
    tc.canopus.pipelining = true;
    tc.canopus.cycle_interval = 5 * kMillisecond;
    tc.canopus.max_batch = 1'000;
    ok = scale_one(h, "fig6 7-DC Canopus", tc, 400'000.0, threads, &speedup,
                   &wall) &&
         ok;
    h.add_scalar("fig6_speedup_at_4_threads", speedup);
    h.add_scalar("fig6_serial_wall_seconds", wall);
  }

  // (b) 1000-node stress: 20 racks x (40 servers + 10 client machines) in
  // one DC — the ROADMAP north-star scale. Lookahead is the 2 us
  // aggregation uplink, so this is the kernel's HARD case: fine-grained
  // synchronization, single-DC latencies.
  {
    TrialConfig tc;
    tc.system = System::kCanopus;
    tc.groups = 20;
    tc.per_group = 40;
    tc.client_machines = 10;
    tc.warmup = 20 * kMillisecond;
    tc.measure = quick ? 25 * kMillisecond : 60 * kMillisecond;
    tc.drain = 20 * kMillisecond;
    tc.canopus.pipelining = true;
    tc.canopus.cycle_interval = 5 * kMillisecond;
    tc.canopus.max_batch = 1'000;
    ok = scale_one(h, "1000-node stress Canopus", tc, 100'000.0, threads,
                   &speedup, &wall) &&
         ok;
    h.add_scalar("stress_speedup_at_4_threads", speedup);
    h.add_scalar("stress_serial_wall_seconds", wall);
    std::printf("\n1000-node stress serial wall: %.2f s (interactive target: "
                "< 10 s)\n",
                wall);
  }

  h.add_scalar("hardware_threads",
               static_cast<double>(std::thread::hardware_concurrency()));
  h.add_scalar("all_identical_to_serial", ok ? 1 : 0);
  if (!ok)
    std::printf("\nFAIL: a sharded run diverged from its serial twin\n");
  const int rc = h.finish();
  return ok ? rc : 1;
}
