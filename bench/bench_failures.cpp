// Failure-scenario bench: throughput/availability before, during and after
// each standard fault scenario, for every consensus system, under one
// deterministic fault schedule per scenario.
//
// No paper figure corresponds to this bench — the paper's evaluation is
// failure-free — but §6 (liveness) specifies how Canopus must behave under
// node and super-leaf failures, and the baselines' availability under the
// same faults is the context for that design choice. The safety columns
// assert the Agreement property under faults: live nodes of a system must
// report identical commit digests in every scenario.
//
// Emits BENCH_failures.json (canopus-bench-v1): one series per
// (system, scenario) with points "before"/"during"/"after" and scalars
//   digests_agree, stalled_during, progressed_after, committed_writes,
//   comparable_nodes, availability_during (throughput/offered),
//   snapshots_installed, log_entries_retained, retention_ok (ISSUE 10:
//   the compaction/state-transfer verdict — a retention breach counts as
//   a safety violation).
// The non-WAN suite includes long_downtime: an outage long enough that
// every system's repair window overflows and catch-up must go through
// snapshot/state transfer (the Canopus sponsored rejoin).
// The trial matrix runs on the shared TrialPool; every trial builds an
// isolated simulator from a derived seed, so results are bit-identical to
// a serial run regardless of --threads.
//
// --wan switches to geo-failover mode (BENCH_failures_wan.json): the
// Table 1 multi-DC topology, and the scenarios kill a WHOLE datacenter —
// first DC 0 (taking the Zab/Raft leader), then DC 1 — reporting the
// client-observed failover time (first post-fault write completion) and
// per-phase availability. A dead DC is a dead super-leaf, so Canopus must
// stall, by design; quorum systems must fail over.
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "workload/fault_scenario.h"

int main(int argc, char** argv) {
  using namespace canopus;
  using namespace canopus::workload;
  bool wan = false;
  std::string only_scenario;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a(argv[i]);
    if (a == "--wan") wan = true;
    // Bisection filter: run one scenario across every system (same trial
    // seeds as the full matrix — filtering changes WHICH trials run,
    // never their bits). The ctest long_downtime smoke uses this.
    if (a.rfind("--scenario=", 0) == 0)
      only_scenario = std::string(a.substr(11));
  }
  bench::Harness h(
      argc, argv, wan ? "failures_wan" : "failures",
      wan ? "Geo-failover: whole-datacenter outage on the Table 1 topology"
          : "Failure scenarios: availability + safety per system",
      wan ? "Sec 8.2 topology (Table 1); no paper figure"
          : "Sec 6 (liveness under failures); no paper figure");
  const bool quick = h.quick();

  const int groups = 3, per_group = 3;
  FaultTiming ft;
  if (wan) {  // WAN phases must dwarf the 80+ ms inter-DC round trips
    ft.warmup = 500 * kMillisecond;
    ft.fault_at = 1'500 * kMillisecond;
    ft.heal_at = 3'000 * kMillisecond;
    ft.end_at = 4'500 * kMillisecond;
    ft.drain = 1'000 * kMillisecond;
  } else if (!quick) {  // longer phases tighten the availability estimates
    ft.fault_at = 1'300 * kMillisecond;
    ft.heal_at = 2'600 * kMillisecond;
    ft.end_at = 3'900 * kMillisecond;
    ft.drain = 800 * kMillisecond;
  }

  TrialConfig base;
  base.sim_threads = h.sim_threads();
  base.groups = groups;
  base.per_group = per_group;
  base.client_machines = 2;
  base.warmup = ft.warmup;
  if (wan) {
    // Deep repair windows so a DC dark for 1.5 s can rejoin, but the
    // DEFAULT retry timers: fault_tuned's 25 ms retries are rack-scale
    // tunings that would thrash 80+ ms WAN round trips.
    base.wan = true;
    base.zab.history_depth = 16'384;
    base.epaxos.repair_window = 16'384;
  } else {
    base = fault_tuned(base);
  }
  const double rate = wan ? 6'000 : 20'000;

  // Scenarios carry their own timing: the standard suite shares `ft`, but
  // long_downtime needs an outage long enough to overflow every repair
  // window (ISSUE 10) — it would be a plain single_node_crash under `ft`.
  std::vector<FaultScenario> scenarios;
  std::vector<FaultTiming> timings;
  if (wan) {
    scenarios.push_back(dc_outage_scenario(0, per_group, ft));  // leader DC
    scenarios.push_back(dc_outage_scenario(1, per_group, ft));
    timings.assign(scenarios.size(), ft);
  } else {
    scenarios = standard_scenarios(groups, per_group, ft);
    timings.assign(scenarios.size(), ft);
    const FaultTiming ldt = long_downtime_timing();
    scenarios.push_back(long_downtime_scenario(per_group, ldt));
    timings.push_back(ldt);
  }

  // Flatten the (system x scenario) matrix for the pool; results land by
  // index, which keeps the output identical for any thread count.
  struct Job {
    System system;
    std::size_t scenario;
  };
  std::vector<std::size_t> selected;
  for (std::size_t sc = 0; sc < scenarios.size(); ++sc)
    if (only_scenario.empty() || scenarios[sc].name == only_scenario)
      selected.push_back(sc);
  if (selected.empty()) {
    std::fprintf(stderr, "error: --scenario=%s matched nothing\n",
                 only_scenario.c_str());
    return 1;
  }
  std::vector<Job> jobs;
  for (System sys : kAllSystems)
    for (std::size_t sc : selected) jobs.push_back({sys, sc});

  std::vector<ScenarioResult> results(jobs.size());
  h.pool().run_indexed(jobs.size(), [&](std::size_t i) {
    TrialConfig tc = base;
    tc.system = jobs[i].system;
    tc.warmup = timings[jobs[i].scenario].warmup;
    results[i] = run_fault_scenario(tc, scenarios[jobs[i].scenario],
                                    timings[jobs[i].scenario], rate);
  });

  int violations = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ScenarioResult& r = results[i];
    if (i % selected.size() == 0)
      std::printf("\n--- %s ---\n", system_name(jobs[i].system));
    char fo[32];
    if (r.failed_over())
      std::snprintf(fo, sizeof fo, "%.1f ms",
                    static_cast<double>(r.failover_ns) / 1e6);
    else
      std::snprintf(fo, sizeof fo, "never");
    std::printf(
        "  %-24s  avail %5.1f%% / %5.1f%% / %5.1f%%   failover %-10s %s%s\n",
        r.scenario.c_str(), 100 * r.before.throughput / rate,
        100 * r.during.throughput / rate, 100 * r.after.throughput / rate, fo,
        r.digests_agree ? "agree" : "DIVERGED",
        r.stalled_during() ? " (stalled)" : "");
    const FaultScenario& scen = scenarios[jobs[i].scenario];
    if (!r.safe()) ++violations;
    // Every scenario heals and drains, so comparable nodes must converge
    // to the same commit count — EXCEPT a system stalled by majority loss
    // (Canopus survivors freeze a broadcast apart and the dead super-leaf
    // never rejoins).
    if (r.commit_spread > 0 && !(scen.majority_loss && r.stalled_during()))
      ++violations;
    // Canopus must stall (not diverge) when a super-leaf loses its
    // majority — §6's documented trade. (Other systems may also pause:
    // the crashed majority includes server 0, the Zab/Raft leader.)
    if (scen.majority_loss && jobs[i].system == System::kCanopus &&
        !r.stalled_during())
      ++violations;
    // Compaction contract: no node may retain more log than its configured
    // bound, in any scenario. A breach is a real bug, not a tuning issue.
    if (!r.retention_ok) ++violations;

    auto& sr = h.add_series(std::string(system_name(jobs[i].system)) + " / " +
                            r.scenario);
    sr.attr("system", system_name(jobs[i].system))
        .attr("scenario", r.scenario)
        .scalar("digests_agree", r.digests_agree ? 1 : 0)
        .scalar("stalled_during", r.stalled_during() ? 1 : 0)
        .scalar("progressed_after", r.progressed_after() ? 1 : 0)
        .scalar("committed_writes",
                static_cast<double>(r.committed_writes))
        .scalar("comparable_nodes",
                static_cast<double>(r.comparable_nodes))
        .scalar("commit_spread", static_cast<double>(r.commit_spread))
        .scalar("snapshots_installed",
                static_cast<double>(r.snapshots_installed))
        .scalar("log_entries_retained",
                static_cast<double>(r.max_log_retained))
        .scalar("retention_ok", r.retention_ok ? 1 : 0)
        .scalar("availability_during", r.during.throughput / rate)
        .scalar("failover_ms",
                r.failed_over() ? static_cast<double>(r.failover_ns) / 1e6
                                : -1)
        .point("before", r.before)
        .point("during", r.during)
        .point("after", r.after);
  }

  h.add_scalar("safety_violations", violations);
  std::printf("\nsafety violations: %d\n", violations);
  const int json_rc = h.finish();
  return json_rc != 0 ? json_rc : (violations > 0 ? 2 : 0);
}
