// Threaded-runtime bench (DESIGN.md §12): wall-clock behaviour of the
// real-thread backend.
//
// Four planes:
//  1. Mailbox fabric: all-to-all echo traffic over the SPSC mailboxes at
//     several node counts — messages/second through the rings.
//  2. Zero-steady-state-alloc gate: the 2-node echo plane re-run with the
//     global operator-new counter sampled around the steady window; any
//     allocation per message fails the bench (exit nonzero), the threaded
//     analogue of the simulator's allocs/event ~ 0 discipline (PR 4).
//  3. Calibration: a single node echoing to itself with payloads of
//     increasing size, every byte touched once per hop. A linear fit of
//     ns/hop over payload bytes recovers the fixed per-message cost and the
//     per-byte cost on THIS hardware — the measured counterpart of the
//     simulator's CpuModel {send_fixed, recv_fixed, ns_per_byte}; see
//     EXPERIMENTS.md ("Calibrating the cost model against real threads").
//  4. Protocols: the scripted five-node deployment of each system on real
//     threads — submit->commit latency percentiles and message counts.
//
// Usage: bench_runtime [--full] [--json=PATH]   (quick mode by default)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "runtime/threaded.h"
#include "runtime/threaded_trial.h"
#include "simnet/payload_testing.h"

namespace canopus::bench {
namespace {

using runtime::ThreadedRuntime;
using simnet::Message;

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// Echoes every message straight back to its sender, touching each payload
// byte once (the "deserialization" the calibration plane measures).
class EchoProc : public simnet::Process {
 public:
  void on_message(const Message& m) override {
    if (const std::string* s = m.as<std::string>()) {
      unsigned sum = 0;
      for (const char c : *s) sum += static_cast<unsigned char>(c);
      sink_ += sum;
    }
    send(m.src(), m.wire_bytes(), m.payload());
  }

  // Seeds the rally from inside the node's execution context (via post()).
  void kick(NodeId dst, std::size_t bytes, const simnet::Payload& p) {
    send(dst, bytes, p);
  }

 private:
  std::uint64_t sink_ = 0;  // keeps the byte loop observable
};

struct EchoRun {
  double msgs_per_s = 0;
  std::uint64_t window_msgs = 0;
  std::uint64_t window_allocs = 0;
};

/// All-to-all echo over `n` nodes for `window_ms` after `warmup_ms`;
/// `payload_bytes` > 0 switches the int payload for a string of that size.
EchoRun run_echo_plane(int n, int warmup_ms, int window_ms,
                       std::size_t payload_bytes) {
  ThreadedRuntime rt(static_cast<std::size_t>(n), /*seed=*/1);
  std::vector<std::unique_ptr<EchoProc>> procs;
  for (int i = 0; i < n; ++i) {
    procs.push_back(std::make_unique<EchoProc>());
    rt.attach(static_cast<NodeId>(i), *procs.back());
  }
  rt.start();

  // One payload allocation total; every hop shares it by refcount.
  simnet::Payload payload =
      payload_bytes > 0 ? simnet::Payload(std::string(payload_bytes, 'x'))
                        : simnet::Payload(int{1});
  const std::size_t wire = payload_bytes > 0 ? payload_bytes : 16;
  // Seed one in-flight message per directed pair (self-pair when n == 1).
  for (int i = 0; i < n; ++i) {
    EchoProc* p = procs[static_cast<std::size_t>(i)].get();
    for (int d = 0; d < n; ++d) {
      if (n > 1 && d == i) continue;
      const NodeId dst = static_cast<NodeId>(d);
      rt.post(static_cast<NodeId>(i),
              [p, dst, wire, payload] { p->kick(dst, wire, payload); });
    }
  }

  sleep_ms(warmup_ms);
  const std::uint64_t msgs0 = rt.total_stats().delivered;
  const std::uint64_t allocs0 = heap_allocations();
  sleep_ms(window_ms);
  const std::uint64_t msgs1 = rt.total_stats().delivered;
  const std::uint64_t allocs1 = heap_allocations();
  rt.stop();

  EchoRun out;
  out.window_msgs = msgs1 - msgs0;
  out.window_allocs = allocs1 - allocs0;
  out.msgs_per_s =
      static_cast<double>(out.window_msgs) / (window_ms / 1e3);
  return out;
}

}  // namespace
}  // namespace canopus::bench

int main(int argc, char** argv) {
  using namespace canopus;
  using namespace canopus::bench;

  Harness h(argc, argv, "runtime",
            "Threaded runtime: real-thread execution over SPSC mailboxes",
            "DESIGN.md Sec 12 (runtime seam; not a paper figure)");

  const int warmup_ms = h.full() ? 300 : 150;
  const int window_ms = h.full() ? 1500 : 400;

  // --- plane 1: mailbox fabric throughput vs node count -------------------
  std::printf("\n-- mailbox fabric: all-to-all echo --\n");
  std::vector<int> node_counts = h.full() ? std::vector<int>{2, 4, 8, 12}
                                          : std::vector<int>{2, 4, 8};
  for (const int n : node_counts) {
    const EchoRun r = run_echo_plane(n, warmup_ms, window_ms, 0);
    std::printf("  n=%-3d  %10.0f msgs/s  (%llu in window)\n", n, r.msgs_per_s,
                static_cast<unsigned long long>(r.window_msgs));
    h.add_series("mailbox/n=" + std::to_string(n))
        .attr("plane", "mailbox")
        .scalar("nodes", n)
        .scalar("msgs_per_s", r.msgs_per_s);
  }

  // --- plane 2: zero-steady-state-alloc gate ------------------------------
  std::printf("\n-- steady-state allocation gate (2-node echo) --\n");
  const EchoRun gate = run_echo_plane(2, warmup_ms, window_ms, 0);
  const double allocs_per_msg =
      gate.window_msgs > 0 ? static_cast<double>(gate.window_allocs) /
                                 static_cast<double>(gate.window_msgs)
                           : 0.0;
  std::printf("  %llu allocs over %llu msgs  (%.6f allocs/msg)\n",
              static_cast<unsigned long long>(gate.window_allocs),
              static_cast<unsigned long long>(gate.window_msgs),
              allocs_per_msg);
  h.add_scalar("steady_window_msgs", static_cast<double>(gate.window_msgs));
  h.add_scalar("steady_window_allocs",
               static_cast<double>(gate.window_allocs));
  h.add_scalar("steady_allocs_per_msg", allocs_per_msg);

  // --- plane 3: payload-size calibration ----------------------------------
  std::printf("\n-- calibration: self-echo ns/hop vs payload bytes --\n");
  std::vector<std::size_t> sizes = h.full()
                                       ? std::vector<std::size_t>{16, 64, 256,
                                                                  1024, 4096,
                                                                  16384}
                                       : std::vector<std::size_t>{16, 1024,
                                                                  4096};
  std::vector<double> xs, ys;
  for (const std::size_t b : sizes) {
    const EchoRun r = run_echo_plane(1, warmup_ms, window_ms, b);
    const double ns_per_hop =
        r.window_msgs > 0 ? window_ms * 1e6 / static_cast<double>(r.window_msgs)
                          : 0.0;
    std::printf("  %6zu B  %10.1f ns/hop  (%llu hops)\n", b, ns_per_hop,
                static_cast<unsigned long long>(r.window_msgs));
    h.add_series("calibration/bytes=" + std::to_string(b))
        .attr("plane", "calibration")
        .scalar("payload_bytes", static_cast<double>(b))
        .scalar("ns_per_hop", ns_per_hop)
        .scalar("hops", static_cast<double>(r.window_msgs));
    if (r.window_msgs > 0) {
      xs.push_back(static_cast<double>(b));
      ys.push_back(ns_per_hop);
    }
  }
  // Least-squares line ns_per_hop = fixed + slope * bytes. One hop is one
  // send plus one receive of the payload with each byte touched once, so
  // `fixed` plays the simulator's send_fixed + recv_fixed and `slope` its
  // per-byte cost for the one direction that touches bytes.
  double fixed = 0, slope = 0;
  if (xs.size() >= 2) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      sx += xs[i];
      sy += ys[i];
      sxx += xs[i] * xs[i];
      sxy += xs[i] * ys[i];
    }
    const double m = static_cast<double>(xs.size());
    const double den = m * sxx - sx * sx;
    slope = den != 0 ? (m * sxy - sx * sy) / den : 0;
    fixed = (sy - slope * sx) / m;
  }
  std::printf("  fit: ns/hop = %.1f + %.4f * bytes\n", fixed, slope);
  h.add_scalar("calibrated_hop_fixed_ns", fixed);
  h.add_scalar("calibrated_ns_per_byte", slope);
  h.add_scalar("sim_default_ns_per_byte", 2.5);
  h.add_scalar("sim_default_hop_fixed_ns", 4000);  // send_fixed + recv_fixed

  // --- plane 4: protocols on real threads ---------------------------------
  std::printf("\n-- protocols: scripted 5-node deployment on threads --\n");
  const std::size_t k = h.full() ? 300 : 80;
  const Time gap = h.full() ? kMillisecond : 2 * kMillisecond;
  for (const workload::System sys : workload::kAllSystems) {
    workload::TrialConfig tc;
    tc.system = sys;
    tc.groups = 1;
    tc.per_group = 5;
    tc.client_machines = 0;
    tc.seed = 1;
    const workload::ScriptResult r =
        workload::run_script_threads(tc, k, /*wall_deadline=*/30 * kSecond,
                                     /*submit_gap=*/gap);
    const std::uint64_t committed =
        *std::min_element(r.committed.begin(), r.committed.end());
    std::printf(
        "  %-10s committed %llu/%zu  p50 %8.3f ms  p99 %8.3f ms  "
        "%llu msgs  %.2f s\n",
        workload::system_name(sys),
        static_cast<unsigned long long>(committed), k, ms(r.commit_p50),
        ms(r.commit_p99), static_cast<unsigned long long>(r.messages),
        r.wall_seconds);
    if (!r.completed)
      std::printf("  WARNING: %s did not commit the full script in time\n",
                  workload::system_name(sys));
    h.add_series(std::string("protocol/") + workload::system_name(sys))
        .attr("plane", "protocol")
        .attr("system", workload::system_name(sys))
        .scalar("script_k", static_cast<double>(k))
        .scalar("committed_min", static_cast<double>(committed))
        .scalar("completed", r.completed ? 1 : 0)
        .scalar("commit_p50_ns", static_cast<double>(r.commit_p50))
        .scalar("commit_p99_ns", static_cast<double>(r.commit_p99))
        .scalar("messages", static_cast<double>(r.messages))
        .scalar("wall_seconds", r.wall_seconds);
  }

  int rc = h.finish();
  if (gate.window_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu heap allocations in the steady echo window "
                 "(zero-steady-state-alloc gate)\n",
                 static_cast<unsigned long long>(gate.window_allocs));
    rc = 1;
  }
  return rc;
}
