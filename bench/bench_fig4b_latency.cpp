// Figure 4(b): single-datacenter median request completion time at 70% of
// each system's maximum throughput, while scaling the group size.
//
// Methodology per §8.1: "we report the median request completion time of
// the tested systems when they are operating at 70% of their maximum
// throughput."
//
// Expected shape (paper): Canopus' median is mostly independent of the
// write percentage and significantly shorter than EPaxos with 5 ms
// batching; EPaxos-2ms halves EPaxos' latency at the cost of scalability;
// Canopus' median only marginally increases from 9 to 27 nodes.
#include <string>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace canopus;
  using namespace canopus::workload;
  bench::Harness h(
      argc, argv, "fig4b",
      "Figure 4(b): single-DC median completion time at 70% of max load",
      "Fig 4(b), Sec 8.1.1");
  const bool quick = h.quick();

  const std::vector<int> per_rack = quick ? std::vector<int>{3, 9}
                                          : std::vector<int>{3, 5, 7, 9};
  const int steps = quick ? 5 : 8;
  const double growth = quick ? 1.9 : 1.5;

  struct Series {
    const char* name;
    System system;
    double writes;
    Time batch;
  };
  const std::vector<Series> series{
      {"Canopus 20%-writes", System::kCanopus, 0.2, 0},
      {"Canopus 50%-writes", System::kCanopus, 0.5, 0},
      {"Canopus 100%-writes", System::kCanopus, 1.0, 0},
      {"EPaxos 5ms-batch", System::kEPaxos, 0.2, 5 * kMillisecond},
      {"EPaxos 2ms-batch", System::kEPaxos, 0.2, 2 * kMillisecond},
  };

  std::printf("\n%8s  %-22s  %16s  %14s\n", "nodes", "series",
              "median @70% (ms)", "p99 (ms)");
  for (int pr : per_rack) {
    for (const Series& s : series) {
      TrialConfig tc;
      tc.sim_threads = h.sim_threads();
      tc.runtime = h.runtime_kind();
      tc.groups = 3;
      tc.per_group = pr;
      tc.warmup = 400 * kMillisecond;
      tc.measure = quick ? 700 * kMillisecond : kSecond;
      tc.drain = 400 * kMillisecond;
      tc.system = s.system;
      tc.write_ratio = s.writes;
      if (s.batch > 0) tc.epaxos.batch_interval = s.batch;
      auto trial = make_trial(tc);
      const auto res = find_max_throughput(
          h.pool(), trial, s.system == System::kCanopus ? 400'000 : 200'000,
          growth, 10 * kMillisecond, steps);
      const Measurement at70 = trial(0.7 * res.max.throughput);
      std::printf("%8d  %-22s  %16.3f  %14.3f\n", 3 * pr, s.name,
                  bench::ms(at70.median), bench::ms(at70.p99));
      h.add_series(std::string(s.name) + " @ " + std::to_string(3 * pr) +
                   " nodes")
          .attr("system", system_name(s.system))
          .scalar("nodes", 3 * pr)
          .scalar("write_ratio", s.writes)
          .search(res)
          .point("at_70pct_of_max", at70);
    }
  }
  std::printf(
      "\nShape vs paper: Canopus median < EPaxos-5ms at every size; EPaxos\n"
      "trades completion time for scalability when batching is reduced.\n");
  return h.finish();
}
