// Ablation: super-leaf broadcast substrate (§4.3) — Raft-variant software
// broadcast (the paper's prototype) vs hardware-assisted atomic broadcast
// in the ToR switch.
//
// Expected: the hardware substrate cuts intra-super-leaf commit to a single
// switch transit (no acks, no commit notifications, no quorum waits),
// lowering request completion time and shaving per-node message-processing
// CPU; the effect on single-DC throughput is modest because Canopus is
// read/CPU-bound, exactly why the paper treats the substrate as pluggable.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace canopus;
  using namespace canopus::workload;
  const bool quick = bench::quick_mode(argc, argv);

  bench::print_header(
      "Ablation: broadcast substrate (27 nodes, 20% writes, 0.8 Mreq/s)",
      "Sec 4.3: Raft variant vs hardware-assisted atomic broadcast");

  for (auto kind : {core::BroadcastKind::kRaft, core::BroadcastKind::kSwitch}) {
    TrialConfig tc;
    tc.system = System::kCanopus;
    tc.groups = 3;
    tc.per_group = 9;
    tc.warmup = 400 * kMillisecond;
    tc.measure = quick ? 600 * kMillisecond : kSecond;
    tc.drain = 400 * kMillisecond;
    tc.canopus.broadcast = kind;
    const Measurement m = run_trial(tc, 800'000);
    bench::print_measurement_row(
        kind == core::BroadcastKind::kRaft ? "Raft-based reliable broadcast"
                                           : "switch-assisted atomic broadcast",
        m);
  }
  return 0;
}
