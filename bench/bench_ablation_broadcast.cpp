// Ablation: super-leaf broadcast substrate (§4.3) — Raft-variant software
// broadcast (the paper's prototype) vs hardware-assisted atomic broadcast
// in the ToR switch.
//
// Expected: the hardware substrate cuts intra-super-leaf commit to a single
// switch transit (no acks, no commit notifications, no quorum waits),
// lowering request completion time and shaving per-node message-processing
// CPU; the effect on single-DC throughput is modest because Canopus is
// read/CPU-bound, exactly why the paper treats the substrate as pluggable.
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace canopus;
  using namespace canopus::workload;
  bench::Harness h(
      argc, argv, "ablation_broadcast",
      "Ablation: broadcast substrate (27 nodes, 20% writes, 0.8 Mreq/s)",
      "Sec 4.3: Raft variant vs hardware-assisted atomic broadcast");
  const bool quick = h.quick();

  const std::vector<core::BroadcastKind> kinds{core::BroadcastKind::kRaft,
                                               core::BroadcastKind::kSwitch};
  std::vector<Measurement> results(kinds.size());
  h.pool().run_indexed(kinds.size(), [&](std::size_t i) {
    TrialConfig tc;
    tc.sim_threads = h.sim_threads();
    tc.runtime = h.runtime_kind();
    tc.system = System::kCanopus;
    tc.groups = 3;
    tc.per_group = 9;
    tc.warmup = 400 * kMillisecond;
    tc.measure = quick ? 600 * kMillisecond : kSecond;
    tc.drain = 400 * kMillisecond;
    tc.canopus.broadcast = kinds[i];
    results[i] = run_trial(tc, 800'000);
  });

  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const char* label = kinds[i] == core::BroadcastKind::kRaft
                            ? "Raft-based reliable broadcast"
                            : "switch-assisted atomic broadcast";
    bench::print_measurement_row(label, results[i]);
    auto& sr = h.add_series(label);
    sr.attr("substrate",
            kinds[i] == core::BroadcastKind::kRaft ? "raft" : "switch");
    sr.sweep = {results[i]};
  }
  return h.finish();
}
