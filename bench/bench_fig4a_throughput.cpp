// Figure 4(a): single-datacenter maximum throughput while scaling the
// number of nodes (9, 15, 21, 27 = 3 racks x {3,5,7,9}).
//
// Series, as in the paper:
//   Canopus at 20% / 50% / 100% writes
//   EPaxos (0% interference) at 5 ms and 2 ms batching, 20% writes
//
// Expected shape (paper): Canopus read-heavy throughput GROWS with group
// size (reads are local); EPaxos stays flat or declines, and declines
// harder with the smaller batch; at 27 nodes / 20% writes Canopus exceeds
// EPaxos-5ms by >3x.
#include <string>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace canopus;
  using namespace canopus::workload;
  bench::Harness h(argc, argv, "fig4a",
                   "Figure 4(a): single-DC max throughput vs group size",
                   "Fig 4(a), Sec 8.1.1");
  const bool quick = h.quick();

  const std::vector<int> per_rack = quick ? std::vector<int>{3, 9}
                                          : std::vector<int>{3, 5, 7, 9};
  const int steps = quick ? 5 : 9;
  const double growth = quick ? 1.9 : 1.4;

  auto base = [&](int pr) {
    TrialConfig tc;
    tc.sim_threads = h.sim_threads();
    tc.runtime = h.runtime_kind();
    tc.groups = 3;
    tc.per_group = pr;
    tc.client_machines = 5;
    tc.warmup = 400 * kMillisecond;
    tc.measure = quick ? 700 * kMillisecond : kSecond;
    tc.drain = 400 * kMillisecond;
    return tc;
  };

  std::printf("\n%8s  %-22s  %14s  (median at max, ms)\n", "nodes",
              "series", "max Mreq/s");

  struct Series {
    const char* name;
    System system;
    double writes;
    Time batch;
  };
  const std::vector<Series> series{
      {"Canopus 20%-writes", System::kCanopus, 0.2, 0},
      {"Canopus 50%-writes", System::kCanopus, 0.5, 0},
      {"Canopus 100%-writes", System::kCanopus, 1.0, 0},
      {"EPaxos 5ms-batch", System::kEPaxos, 0.2, 5 * kMillisecond},
      {"EPaxos 2ms-batch", System::kEPaxos, 0.2, 2 * kMillisecond},
  };

  std::vector<std::vector<double>> table;
  for (int pr : per_rack) {
    table.emplace_back();
    for (const Series& s : series) {
      TrialConfig tc = base(pr);
      tc.system = s.system;
      tc.write_ratio = s.writes;
      tc.epaxos.batch_interval = s.batch > 0 ? s.batch : tc.epaxos.batch_interval;
      const double start = s.system == System::kCanopus ? 400'000 : 200'000;
      auto res = find_max_throughput(h.pool(), make_trial(tc), start, growth,
                                     10 * kMillisecond, steps);
      table.back().push_back(res.max.throughput);
      std::printf("%8d  %-22s  %14.3f  (%.2f)\n", 3 * pr, s.name,
                  bench::mreq(res.max.throughput), bench::ms(res.max.median));
      h.add_series(std::string(s.name) + " @ " + std::to_string(3 * pr) +
                   " nodes")
          .attr("system", system_name(s.system))
          .scalar("nodes", 3 * pr)
          .scalar("write_ratio", s.writes)
          .search(res);
    }
  }

  // Paper-shape checks printed as a summary.
  std::printf("\nShape vs paper:\n");
  const auto& biggest = table.back();
  const double vs_epaxos = biggest[3] > 0 ? biggest[0] / biggest[3] : 0.0;
  const double canopus_scaling =
      table.front()[0] > 0 ? table.back()[0] / table.front()[0] : 0.0;
  const double epaxos_scaling =
      table.front()[4] > 0 ? table.back()[4] / table.front()[4] : 0.0;
  std::printf("  Canopus-20%% / EPaxos-5ms at %d nodes: %.1fx (paper: >3x)\n",
              3 * per_rack.back(), vs_epaxos);
  std::printf("  Canopus 20%% scaling %d->%d nodes: %.2fx (paper: grows)\n",
              3 * per_rack.front(), 3 * per_rack.back(), canopus_scaling);
  std::printf("  EPaxos 2ms scaling %d->%d nodes: %.2fx (paper: shrinks)\n",
              3 * per_rack.front(), 3 * per_rack.back(), epaxos_scaling);
  h.add_scalar("canopus20_over_epaxos5ms_at_max_nodes", vs_epaxos);
  h.add_scalar("canopus20_scaling", canopus_scaling);
  h.add_scalar("epaxos2ms_scaling", epaxos_scaling);
  return h.finish();
}
