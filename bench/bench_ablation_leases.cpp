// Ablation: write leases (§7.2) — read latency in a WAN deployment.
//
// Plain Canopus delays every read 1-2 consensus cycles to linearize it.
// With write leases, a read of a key with NO active write lease is served
// immediately from committed state; only reads of recently-written keys
// wait. The effect is largest for read-heavy WAN workloads where a cycle
// costs a wide-area RTT.
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace canopus;
  using namespace canopus::workload;
  bench::Harness h(
      argc, argv, "ablation_leases",
      "Ablation: write leases (3 DCs x 3 nodes, 1% writes, hot keyspace)",
      "read optimization from Sec 7.2");
  const bool quick = h.quick();

  const std::vector<bool> variants{false, true};
  std::vector<Measurement> results(variants.size());
  h.pool().run_indexed(variants.size(), [&](std::size_t i) {
    TrialConfig tc;
    tc.sim_threads = h.sim_threads();
    tc.runtime = h.runtime_kind();
    tc.system = System::kCanopus;
    tc.wan = true;
    tc.groups = 3;
    tc.per_group = 3;
    tc.write_ratio = 0.01;
    // A small keyspace maximizes write-lease collisions; even so, most
    // reads at 1% writes hit lease-free keys.
    tc.num_keys = 10'000;
    tc.warmup = 1'200 * kMillisecond;
    tc.measure = quick ? kSecond : 1'500 * kMillisecond;
    tc.drain = 1'500 * kMillisecond;
    tc.canopus.pipelining = true;
    tc.canopus.write_leases = variants[i];
    tc.canopus.lease_cycles = 4;
    results[i] = run_trial(tc, 200'000);
  });

  for (std::size_t i = 0; i < variants.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof label, "write leases %s",
                  variants[i] ? "ON" : "OFF");
    bench::print_measurement_row(label, results[i]);
    auto& sr = h.add_series(label);
    sr.attr("write_leases", variants[i] ? "on" : "off");
    sr.sweep = {results[i]};
  }
  std::printf("\nExpected: leases cut median read latency from ~1 WAN cycle\n"
              "to near-zero for uncontended keys while writes and contended\n"
              "reads keep full linearizable ordering.\n");
  return h.finish();
}
