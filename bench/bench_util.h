// Shared table-printing and CLI helpers for the figure benches.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "workload/deployments.h"
#include "workload/runner.h"

namespace canopus::bench {

/// Default runs use a moderate sweep depth so the whole bench suite
/// finishes in minutes; pass `--full` for the fine-grained sweeps used in
/// EXPERIMENTS.md.
inline bool full_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--full") == 0) return true;
  return false;
}

/// Kept for scripts that explicitly ask for the smoke configuration; the
/// default is already the moderate depth.
inline bool quick_mode(int argc, char** argv) {
  return !full_mode(argc, argv);
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

inline double mreq(double req_per_s) { return req_per_s / 1e6; }
inline double ms(Time t) { return static_cast<double>(t) / kMillisecond; }

inline void print_measurement_row(const char* label,
                                  const workload::Measurement& m) {
  std::printf("  %-34s  %8.3f Mreq/s   median %8.3f ms   p99 %8.3f ms\n",
              label, mreq(m.throughput), ms(m.median), ms(m.p99));
}

}  // namespace canopus::bench
