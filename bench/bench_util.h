// Shared driver for the paper-figure benches.
//
// Every bench main constructs a Harness, runs its trials through the
// harness' TrialPool (independent trials execute concurrently; results are
// bit-identical to a serial run — see workload/trial_pool.h), prints the
// human-readable table, and calls finish(), which writes a machine-readable
// BENCH_<figure>.json next to the binary:
//
//   {
//     "schema": "canopus-bench-v1",
//     "figure": "fig4a", "title": ..., "paper_ref": ...,
//     "mode": "quick" | "full",
//     "threads": N,
//     "wall_clock_seconds": S,
//     "events_processed": E,      // simulator events fired, all trials
//     "events_per_second": E/S,   // the substrate perf trajectory
//     "heap_allocations": A,      // global operator-new count (alloc_count.h)
//     "allocs_per_event": A/E,    // ~0 when the hot path stays allocation-free
//     "scalars": { <figure-level numbers, e.g. shape checks> },
//     "series": [ { "name": ..., "attrs": {<strings>},
//                   "scalars": {<numbers>},
//                   "sweep": [ {offered_req_s, throughput_req_s, median_ns,
//                               p99_ns, mean_ns, completed}, ... ],
//                   "max": <measurement|null>,
//                   "points": { <label>: <measurement>, ... } }, ... ]
//   }
//
// CLI flags (shared by all benches):
//   --full            fine-grained sweeps (default: moderate "quick" depth)
//   --threads=N       trial-pool size: how many independent TRIALS run
//                     concurrently (default: hardware concurrency)
//   --sim-threads=N   shard workers INSIDE each trial (default 1 = serial
//                     event loop; >1 runs the sharded PDES kernel, one
//                     worker per rack/DC-derived shard, bit-identical
//                     results either way — see DESIGN.md Sec 10)
//   --runtime=KIND    execution backend per trial: "sim" (default, the
//                     deterministic discrete-event simulator) or "threads"
//                     (runtime::ThreadedRuntime — real node threads over
//                     SPSC mailboxes, wall-clock, hardware-dependent)
//   --json=PATH       output path (default: BENCH_<figure>.json in the cwd)
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "alloc_count.h"
#include "workload/deployments.h"
#include "workload/runner.h"
#include "workload/trial_pool.h"

namespace canopus::bench {

inline double mreq(double req_per_s) { return req_per_s / 1e6; }
inline double ms(Time t) { return static_cast<double>(t) / kMillisecond; }

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

inline void print_measurement_row(const char* label,
                                  const workload::Measurement& m) {
  std::printf("  %-34s  %8.3f Mreq/s   median %8.3f ms   p99 %8.3f ms\n",
              label, mreq(m.throughput), ms(m.median), ms(m.p99));
}

/// One named result series of a figure: a sweep of measurements plus
/// free-form attributes (strings), scalars (numbers) and named extra points.
struct SeriesResult {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<std::pair<std::string, double>> scalars;
  std::vector<workload::Measurement> sweep;
  workload::Measurement max{};
  bool has_max = false;
  std::vector<std::pair<std::string, workload::Measurement>> points;

  SeriesResult& attr(std::string key, std::string value) {
    attrs.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  SeriesResult& scalar(std::string key, double value) {
    scalars.emplace_back(std::move(key), value);
    return *this;
  }
  SeriesResult& point(std::string label, const workload::Measurement& m) {
    points.emplace_back(std::move(label), m);
    return *this;
  }
  SeriesResult& search(const workload::SearchResult& res) {
    sweep = res.sweep;
    max = res.max;
    // A search that never saw a healthy point has no max: emit null, not an
    // all-zero measurement a reader would mistake for a real data point.
    has_max = res.max.completed > 0;
    return *this;
  }
};

class Harness {
 public:
  Harness(int argc, char** argv, std::string figure, std::string title,
          std::string paper_ref)
      : figure_(std::move(figure)),
        title_(std::move(title)),
        ref_(std::move(paper_ref)),
        json_path_(arg_value(argc, argv, "--json=", "BENCH_" + figure_ + ".json")),
        full_(has_flag(argc, argv, "--full")),
        sim_threads_(parse_sim_threads(argc, argv)),
        runtime_(parse_runtime(argc, argv)),
        pool_(parse_threads(argc, argv)),
        start_(std::chrono::steady_clock::now()),
        events_at_start_(simnet::Simulator::global_events()),
        allocs_at_start_(heap_allocations()) {
    print_header(title_.c_str(), ref_.c_str());
    std::printf("mode: %s   trial threads: %u   sim threads: %u   "
                "runtime: %s\n",
                full_ ? "full" : "quick", pool_.threads(), sim_threads_,
                workload::runtime_name(runtime_));
  }

  bool full() const { return full_; }
  bool quick() const { return !full_; }
  workload::TrialPool& pool() { return pool_; }

  /// Intra-trial shard workers (--sim-threads=N); 1 = serial event loop.
  /// Benches forward this into TrialConfig::sim_threads.
  unsigned sim_threads() const { return sim_threads_; }

  /// Execution backend (--runtime=sim|threads); benches forward this into
  /// TrialConfig::runtime. kThreads runs each trial on real node threads
  /// (runtime::ThreadedRuntime, DESIGN.md Sec 12) at wall-clock speed —
  /// results are then hardware-dependent, not deterministic, and trials
  /// should not run concurrently (--threads=1).
  workload::RuntimeKind runtime_kind() const { return runtime_; }

  SeriesResult& add_series(std::string name) {
    series_.emplace_back();
    series_.back().name = std::move(name);
    return series_.back();
  }

  /// Figure-level scalar (e.g. a shape-vs-paper ratio).
  void add_scalar(std::string name, double value) {
    scalars_.emplace_back(std::move(name), value);
  }

  /// Writes BENCH_<figure>.json and prints the wall clock; returns main()'s
  /// exit code (nonzero when the JSON could not be written).
  int finish() {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    const std::uint64_t events =
        simnet::Simulator::global_events() - events_at_start_;
    const std::uint64_t allocs = heap_allocations() - allocs_at_start_;
    std::FILE* f = std::fopen(json_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path_.c_str());
      return 1;
    }
    write_json(f, wall, events, allocs);
    const bool write_failed = std::ferror(f) != 0;
    if (std::fclose(f) != 0 || write_failed) {
      std::fprintf(stderr, "error: failed writing %s\n", json_path_.c_str());
      return 1;
    }
    std::printf(
        "\nwall clock: %.1f s   %.1f M events/s   %.3f allocs/event   "
        "results: %s\n",
        wall, wall > 0 ? static_cast<double>(events) / wall / 1e6 : 0.0,
        events > 0 ? static_cast<double>(allocs) / static_cast<double>(events)
                   : 0.0,
        json_path_.c_str());
    return 0;
  }

 private:
  static bool has_flag(int argc, char** argv, const char* flag) {
    for (int i = 1; i < argc; ++i)
      if (std::strcmp(argv[i], flag) == 0) return true;
    return false;
  }

  static std::string arg_value(int argc, char** argv, const char* prefix,
                               std::string fallback) {
    const std::size_t len = std::strlen(prefix);
    for (int i = 1; i < argc; ++i)
      if (std::strncmp(argv[i], prefix, len) == 0) return argv[i] + len;
    return fallback;
  }

  static unsigned parse_threads(int argc, char** argv) {
    const std::string v = arg_value(argc, argv, "--threads=", "");
    if (v.empty()) return 0;  // TrialPool default: hardware concurrency
    const long n = std::strtol(v.c_str(), nullptr, 10);
    return n > 0 ? static_cast<unsigned>(n) : 0;
  }

  static unsigned parse_sim_threads(int argc, char** argv) {
    const std::string v = arg_value(argc, argv, "--sim-threads=", "");
    if (v.empty()) return 1;  // serial event loop
    const long n = std::strtol(v.c_str(), nullptr, 10);
    return n > 0 ? static_cast<unsigned>(n) : 1;
  }

  static workload::RuntimeKind parse_runtime(int argc, char** argv) {
    const std::string v = arg_value(argc, argv, "--runtime=", "sim");
    if (v == "threads") return workload::RuntimeKind::kThreads;
    if (v != "sim")
      std::fprintf(stderr, "warning: unknown --runtime=%s, using sim\n",
                   v.c_str());
    return workload::RuntimeKind::kSim;
  }

  static void json_string(std::FILE* f, const std::string& s) {
    std::fputc('"', f);
    for (const char c : s) {
      switch (c) {
        case '"': std::fputs("\\\"", f); break;
        case '\\': std::fputs("\\\\", f); break;
        case '\n': std::fputs("\\n", f); break;
        case '\t': std::fputs("\\t", f); break;
        default:
          if (static_cast<unsigned char>(c) < 0x20)
            std::fprintf(f, "\\u%04x", c);
          else
            std::fputc(c, f);
      }
    }
    std::fputc('"', f);
  }

  static void json_measurement(std::FILE* f, const workload::Measurement& m) {
    std::fprintf(f,
                 "{\"offered_req_s\":%.17g,\"throughput_req_s\":%.17g,"
                 "\"median_ns\":%lld,\"p99_ns\":%lld,\"mean_ns\":%.17g,"
                 "\"completed\":%llu,\"failed\":%llu}",
                 m.offered, m.throughput, static_cast<long long>(m.median),
                 static_cast<long long>(m.p99), m.mean,
                 static_cast<unsigned long long>(m.completed),
                 static_cast<unsigned long long>(m.failed));
  }

  template <typename T, typename WriteValue>
  static void json_object(std::FILE* f,
                          const std::vector<std::pair<std::string, T>>& kv,
                          WriteValue&& write_value) {
    std::fputc('{', f);
    for (std::size_t i = 0; i < kv.size(); ++i) {
      if (i > 0) std::fputc(',', f);
      json_string(f, kv[i].first);
      std::fputc(':', f);
      write_value(f, kv[i].second);
    }
    std::fputc('}', f);
  }

  void write_json(std::FILE* f, double wall, std::uint64_t events,
                  std::uint64_t allocs) const {
    const auto num = [](std::FILE* out, double v) {
      std::fprintf(out, "%.17g", v);
    };
    const auto str = [](std::FILE* out, const std::string& v) {
      json_string(out, v);
    };
    std::fputs("{\"schema\":\"canopus-bench-v1\",\"figure\":", f);
    json_string(f, figure_);
    std::fputs(",\"title\":", f);
    json_string(f, title_);
    std::fputs(",\"paper_ref\":", f);
    json_string(f, ref_);
    std::fprintf(f, ",\"mode\":\"%s\",\"threads\":%u,\"sim_threads\":%u",
                 full_ ? "full" : "quick", pool_.threads(), sim_threads_);
    std::fprintf(f, ",\"wall_clock_seconds\":%.3f", wall);
    std::fprintf(f, ",\"events_processed\":%llu",
                 static_cast<unsigned long long>(events));
    std::fprintf(f, ",\"events_per_second\":%.17g",
                 wall > 0 ? static_cast<double>(events) / wall : 0.0);
    std::fprintf(f, ",\"heap_allocations\":%llu",
                 static_cast<unsigned long long>(allocs));
    std::fprintf(f, ",\"allocs_per_event\":%.17g",
                 events > 0 ? static_cast<double>(allocs) /
                                  static_cast<double>(events)
                            : 0.0);
    std::fputs(",\"scalars\":", f);
    json_object(f, scalars_, num);
    std::fputs(",\"series\":[", f);
    for (std::size_t i = 0; i < series_.size(); ++i) {
      const SeriesResult& s = series_[i];
      if (i > 0) std::fputc(',', f);
      std::fputs("{\"name\":", f);
      json_string(f, s.name);
      std::fputs(",\"attrs\":", f);
      json_object(f, s.attrs, str);
      std::fputs(",\"scalars\":", f);
      json_object(f, s.scalars, num);
      std::fputs(",\"sweep\":[", f);
      for (std::size_t j = 0; j < s.sweep.size(); ++j) {
        if (j > 0) std::fputc(',', f);
        json_measurement(f, s.sweep[j]);
      }
      std::fputs("],\"max\":", f);
      if (s.has_max)
        json_measurement(f, s.max);
      else
        std::fputs("null", f);
      std::fputs(",\"points\":", f);
      json_object(f, s.points,
                  [](std::FILE* out, const workload::Measurement& m) {
                    json_measurement(out, m);
                  });
      std::fputc('}', f);
    }
    std::fputs("]}\n", f);
  }

  std::string figure_;
  std::string title_;
  std::string ref_;
  std::string json_path_;
  bool full_;
  unsigned sim_threads_;
  workload::RuntimeKind runtime_;
  workload::TrialPool pool_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t events_at_start_;
  std::uint64_t allocs_at_start_;
  std::deque<SeriesResult> series_;  ///< deque: add_series references stay
                                     ///< valid across later add_series calls
  std::vector<std::pair<std::string, double>> scalars_;
};

}  // namespace canopus::bench
